#include "crypto/secp256k1.hpp"

#include <array>
#include <cassert>
#include <cstdlib>
#include <vector>

#include "crypto/secp256k1_detail.hpp"

namespace gdp::crypto {

namespace {

// p = 2^256 - 2^32 - 977
constexpr U256 kP{{0xFFFFFFFEFFFFFC2FULL, 0xFFFFFFFFFFFFFFFFULL,
                   0xFFFFFFFFFFFFFFFFULL, 0xFFFFFFFFFFFFFFFFULL}};
// C = 2^256 - p = 2^32 + 977
constexpr U256 kC{{0x1000003D1ULL, 0, 0, 0}};

// n = group order
constexpr U256 kN{{0xBFD25E8CD0364141ULL, 0xBAAEDCE6AF48A03BULL,
                   0xFFFFFFFFFFFFFFFEULL, 0xFFFFFFFFFFFFFFFFULL}};
// D = 2^256 - n (129 bits)
constexpr U256 kD{{0x402DA1732FC9BEBFULL, 0x4551231950B75FC4ULL, 1, 0}};

constexpr U256 kGx{{0x59F2815B16F81798ULL, 0x029BFCDB2DCE28D9ULL,
                    0x55A06295CE870B07ULL, 0x79BE667EF9DCBBACULL}};
constexpr U256 kGy{{0x9C47D08FFB10D4B8ULL, 0xFD17B448A6855419ULL,
                    0x5DA4FBFC0E1108A8ULL, 0x483ADA7726A3C465ULL}};

using u128 = unsigned __int128;

// Generic "x mod (2^256 - delta)" for delta < 2^130: fold the high half
// down (x = hi*delta + lo mod m) until the high half vanishes, then
// conditionally subtract m.  `delta_limbs` bounds the non-zero limbs of
// delta so the fold multiplication skips guaranteed-zero rows.  Retained
// for the scalar field (mod n) and as the schoolbook F_p reference.
U256 reduce512(const U512& x, const U256& m, const U256& delta, int delta_limbs) {
  U512 acc = x;
  while (!acc.hi().is_zero()) {
    acc = add512(mul_small(acc.hi(), delta, delta_limbs), U512::from_u256(acc.lo()));
  }
  U256 r = acc.lo();
  while (r >= m) sub_borrow(r, r, m);
  return r;
}

U256 mod_add(const U256& a, const U256& b, const U256& m) {
  U256 out;
  std::uint64_t carry = add_carry(out, a, b);
  // a,b < m so a+b < 2m < 2^257; one conditional subtraction suffices.
  if (carry != 0 || out >= m) sub_borrow(out, out, m);
  return out;
}

U256 mod_sub(const U256& a, const U256& b, const U256& m) {
  U256 out;
  if (sub_borrow(out, a, b) != 0) add_carry(out, out, m);
  return out;
}

// Binary extended-GCD modular inverse (HAC 14.61 specialized to odd m and
// gcd(a, m) = 1).  Runs in ~256 shift/subtract rounds, an order of
// magnitude cheaper than the ~380-multiplication Fermat ladder.
// Variable time: branch pattern follows the operand bits, so secret-path
// callers must blind or randomize the input first.
U256 mod_inv_binary(const U256& a, const U256& m) {
  assert(!a.is_zero() && a < m);
  const U256 one = U256::from_u64(1);
  U256 u = a;
  U256 v = m;
  U256 x1 = one;
  U256 x2 = U256::zero();
  while (u != one && v != one) {
    while (!u.is_odd()) {
      u = shr1(u);
      if (x1.is_odd()) {
        std::uint64_t carry = add_carry(x1, x1, m);
        x1 = shr1(x1, carry);
      } else {
        x1 = shr1(x1);
      }
    }
    while (!v.is_odd()) {
      v = shr1(v);
      if (x2.is_odd()) {
        std::uint64_t carry = add_carry(x2, x2, m);
        x2 = shr1(x2, carry);
      } else {
        x2 = shr1(x2);
      }
    }
    if (u >= v) {
      sub_borrow(u, u, v);
      x1 = mod_sub(x1, x2, m);
    } else {
      sub_borrow(v, v, u);
      x2 = mod_sub(x2, x1, m);
    }
  }
  return u == one ? x1 : x2;
}

// ---- Montgomery-form F_p core ----------------------------------------------
//
// Fast-path field elements are kept as a*R mod p with R = 2^256.  REDC
// specializes tightly for p = 2^256 - c (c = 2^32 + 977 fits one word):
// with cinv = c^-1 mod 2^64, each round takes m = t[0]*cinv, whose
// defining property m*c == t[0] (mod 2^64) makes the low-limb subtraction
// exact, and then t <- (t - m*c + m*2^256) / 2^64 == (t + m*p) / 2^64.
// Four rounds divide by R; one conditional-move subtraction of p lands
// the canonical representative.  No 512-bit intermediate is ever
// materialized and every loop has a fixed trip count, so the core is
// constant time.

constexpr std::uint64_t kCWord = 0x1000003D1ULL;

// c^-1 mod 2^64 by Newton's iteration: x <- x*(2 - c*x) doubles the
// number of correct low bits and any odd c starts with 3 correct bits.
constexpr std::uint64_t mont_cinv() {
  std::uint64_t x = kCWord;
  for (int i = 0; i < 6; ++i) x *= 2 - kCWord * x;
  return x;
}
constexpr std::uint64_t kCInv = mont_cinv();
static_assert(kCInv * kCWord == 1, "c^-1 mod 2^64");

// R mod p = c (one Montgomery-domain "1") and R^2 mod p = c^2, the
// to_mont multiplier; both fit well under p.
constexpr U256 kMontOne{{kCWord, 0, 0, 0}};
constexpr U256 kR2{{0x000007A2000E90A1ULL, 1, 0, 0}};
static_assert(2 * 977 == 0x7A2 && 977 * 977 == 0xE90A1, "R^2 = c^2 limbs");

std::uint64_t fe_is_zero_mask(const U256& a) {
  const std::uint64_t z = a.w[0] | a.w[1] | a.w[2] | a.w[3];
  return (((z | (0 - z)) >> 63)) - 1;  // all-ones iff z == 0
}

}  // namespace

void u256_cmov(U256& r, const U256& v, std::uint64_t mask) {
  for (int i = 0; i < 4; ++i) r.w[i] ^= mask & (r.w[i] ^ v.w[i]);
}

namespace {

// REDC of a 512-bit value T = r0..r7 (little-endian limbs), T < R*p:
// returns T * R^-1 mod p, fully reduced.
//
// With M = m0 + m1*2^64 + m2*2^128 + m3*2^192 and each m_i chosen so
// that limb i of T - M*c cancels, (T + M*p)/R = (T - M*c)/R + M.  Each
// m_i*c is only two limbs (c < 2^34), so the cancellation pass is one
// low multiply + one widening multiply + a short borrow per round, and
// the whole M contribution folds in as a single 4-limb addition at the
// end — no per-round carry sweep across the top half.  Fixed operation
// sequence, final reduction by conditional move: constant time.
inline U256 mont_redc(std::uint64_t r0, std::uint64_t r1, std::uint64_t r2,
                      std::uint64_t r3, std::uint64_t r4, std::uint64_t r5,
                      std::uint64_t r6, std::uint64_t r7) {
  const std::uint64_t m0 = r0 * kCInv;
  const std::uint64_t h0 =
      static_cast<std::uint64_t>((static_cast<u128>(m0) * kCWord) >> 64);
  // Limb 1 of T - m0*c: the low limb of m1*c will cancel it exactly, so
  // only the borrow (not the value) propagates further.
  const std::uint64_t t1 = r1 - h0;
  std::uint64_t b = r1 < h0 ? 1 : 0;
  const std::uint64_t m1 = t1 * kCInv;
  const std::uint64_t h1 =
      static_cast<std::uint64_t>((static_cast<u128>(m1) * kCWord) >> 64);
  u128 d = static_cast<u128>(r2) - h1 - b;
  const std::uint64_t m2 = static_cast<std::uint64_t>(d) * kCInv;
  b = static_cast<std::uint64_t>(d >> 64) & 1;
  const std::uint64_t h2 =
      static_cast<std::uint64_t>((static_cast<u128>(m2) * kCWord) >> 64);
  d = static_cast<u128>(r3) - h2 - b;
  const std::uint64_t m3 = static_cast<std::uint64_t>(d) * kCInv;
  b = static_cast<std::uint64_t>(d >> 64) & 1;
  const std::uint64_t h3 =
      static_cast<std::uint64_t>((static_cast<u128>(m3) * kCWord) >> 64);
  // Ripple the last subtraction through the top half.
  d = static_cast<u128>(r4) - h3 - b;
  const std::uint64_t v4 = static_cast<std::uint64_t>(d);
  b = static_cast<std::uint64_t>(d >> 64) & 1;
  d = static_cast<u128>(r5) - b;
  const std::uint64_t v5 = static_cast<std::uint64_t>(d);
  b = static_cast<std::uint64_t>(d >> 64) & 1;
  d = static_cast<u128>(r6) - b;
  const std::uint64_t v6 = static_cast<std::uint64_t>(d);
  b = static_cast<std::uint64_t>(d >> 64) & 1;
  d = static_cast<u128>(r7) - b;
  const std::uint64_t v7 = static_cast<std::uint64_t>(d);
  const std::uint64_t b7 = static_cast<std::uint64_t>(d >> 64) & 1;
  // out = (v - b7*2^256) + M, with 0 <= out < 2p: the carry of v + M
  // exceeds b7 by exactly the (single) high bit of out.
  u128 s = static_cast<u128>(v4) + m0;
  const std::uint64_t o0 = static_cast<std::uint64_t>(s);
  s = (s >> 64) + v5 + m1;
  const std::uint64_t o1 = static_cast<std::uint64_t>(s);
  s = (s >> 64) + v6 + m2;
  const std::uint64_t o2 = static_cast<std::uint64_t>(s);
  s = (s >> 64) + v7 + m3;
  const std::uint64_t o3 = static_cast<std::uint64_t>(s);
  const std::uint64_t top = static_cast<std::uint64_t>(s >> 64) - b7;
  U256 r{{o0, o1, o2, o3}};
  U256 sub;
  const std::uint64_t no_borrow = 1 - sub_borrow(sub, r, kP);
  u256_cmov(r, sub, 0 - (top | no_borrow));
  return r;
}

}  // namespace

U256 mont_mul(const U256& A, const U256& B) {
  const std::uint64_t a0 = A.w[0], a1 = A.w[1], a2 = A.w[2], a3 = A.w[3];
  const std::uint64_t b0 = B.w[0], b1 = B.w[1], b2 = B.w[2], b3 = B.w[3];
  // 512-bit product by operand scanning, kept in registers.
  u128 c = static_cast<u128>(a0) * b0;
  const std::uint64_t r0 = static_cast<std::uint64_t>(c);
  c = (c >> 64) + static_cast<u128>(a1) * b0;
  std::uint64_t r1 = static_cast<std::uint64_t>(c);
  c = (c >> 64) + static_cast<u128>(a2) * b0;
  std::uint64_t r2 = static_cast<std::uint64_t>(c);
  c = (c >> 64) + static_cast<u128>(a3) * b0;
  std::uint64_t r3 = static_cast<std::uint64_t>(c);
  std::uint64_t r4 = static_cast<std::uint64_t>(c >> 64);

  c = static_cast<u128>(a0) * b1 + r1;
  r1 = static_cast<std::uint64_t>(c);
  c = (c >> 64) + static_cast<u128>(a1) * b1 + r2;
  r2 = static_cast<std::uint64_t>(c);
  c = (c >> 64) + static_cast<u128>(a2) * b1 + r3;
  r3 = static_cast<std::uint64_t>(c);
  c = (c >> 64) + static_cast<u128>(a3) * b1 + r4;
  r4 = static_cast<std::uint64_t>(c);
  std::uint64_t r5 = static_cast<std::uint64_t>(c >> 64);

  c = static_cast<u128>(a0) * b2 + r2;
  r2 = static_cast<std::uint64_t>(c);
  c = (c >> 64) + static_cast<u128>(a1) * b2 + r3;
  r3 = static_cast<std::uint64_t>(c);
  c = (c >> 64) + static_cast<u128>(a2) * b2 + r4;
  r4 = static_cast<std::uint64_t>(c);
  c = (c >> 64) + static_cast<u128>(a3) * b2 + r5;
  r5 = static_cast<std::uint64_t>(c);
  std::uint64_t r6 = static_cast<std::uint64_t>(c >> 64);

  c = static_cast<u128>(a0) * b3 + r3;
  r3 = static_cast<std::uint64_t>(c);
  c = (c >> 64) + static_cast<u128>(a1) * b3 + r4;
  r4 = static_cast<std::uint64_t>(c);
  c = (c >> 64) + static_cast<u128>(a2) * b3 + r5;
  r5 = static_cast<std::uint64_t>(c);
  c = (c >> 64) + static_cast<u128>(a3) * b3 + r6;
  r6 = static_cast<std::uint64_t>(c);
  const std::uint64_t r7 = static_cast<std::uint64_t>(c >> 64);

  return mont_redc(r0, r1, r2, r3, r4, r5, r6, r7);
}

U256 mont_sqr(const U256& A) {
  const std::uint64_t a0 = A.w[0], a1 = A.w[1], a2 = A.w[2], a3 = A.w[3];
  // Off-diagonal products, each needed twice.
  u128 c = static_cast<u128>(a0) * a1;
  std::uint64_t r1 = static_cast<std::uint64_t>(c);
  c = (c >> 64) + static_cast<u128>(a0) * a2;
  std::uint64_t r2 = static_cast<std::uint64_t>(c);
  c = (c >> 64) + static_cast<u128>(a0) * a3;
  std::uint64_t r3 = static_cast<std::uint64_t>(c);
  std::uint64_t r4 = static_cast<std::uint64_t>(c >> 64);

  c = static_cast<u128>(a1) * a2 + r3;
  r3 = static_cast<std::uint64_t>(c);
  c = (c >> 64) + static_cast<u128>(a1) * a3 + r4;
  r4 = static_cast<std::uint64_t>(c);
  std::uint64_t r5 = static_cast<std::uint64_t>(c >> 64);

  c = static_cast<u128>(a2) * a3 + r5;
  r5 = static_cast<std::uint64_t>(c);
  std::uint64_t r6 = static_cast<std::uint64_t>(c >> 64);

  // Double, then add the diagonal squares.
  std::uint64_t r7 = r6 >> 63;
  r6 = (r6 << 1) | (r5 >> 63);
  r5 = (r5 << 1) | (r4 >> 63);
  r4 = (r4 << 1) | (r3 >> 63);
  r3 = (r3 << 1) | (r2 >> 63);
  r2 = (r2 << 1) | (r1 >> 63);
  r1 = r1 << 1;

  c = static_cast<u128>(a0) * a0;
  const std::uint64_t r0 = static_cast<std::uint64_t>(c);
  c = (c >> 64) + r1;
  r1 = static_cast<std::uint64_t>(c);
  c = (c >> 64) + static_cast<u128>(a1) * a1 + r2;
  r2 = static_cast<std::uint64_t>(c);
  c = (c >> 64) + r3;
  r3 = static_cast<std::uint64_t>(c);
  c = (c >> 64) + static_cast<u128>(a2) * a2 + r4;
  r4 = static_cast<std::uint64_t>(c);
  c = (c >> 64) + r5;
  r5 = static_cast<std::uint64_t>(c);
  c = (c >> 64) + static_cast<u128>(a3) * a3 + r6;
  r6 = static_cast<std::uint64_t>(c);
  r7 += static_cast<std::uint64_t>(c >> 64);

  return mont_redc(r0, r1, r2, r3, r4, r5, r6, r7);
}

U256 to_mont(const U256& a) { return mont_mul(a, kR2); }
U256 from_mont(const U256& a) { return mont_mul(a, U256::from_u64(1)); }

namespace {

// Branchless mod-p add/sub.  The representation-agnostic group operations
// of F_p, shared by canonical and Montgomery-domain values; used on the
// secret signing path, so reduction is by conditional move, not branch.
U256 fe_add(const U256& a, const U256& b) {
  U256 s;
  const std::uint64_t carry = add_carry(s, a, b);
  U256 t;
  const std::uint64_t no_borrow = 1 - sub_borrow(t, s, kP);
  u256_cmov(s, t, 0 - (carry | no_borrow));
  return s;
}

U256 fe_sub(const U256& a, const U256& b) {
  U256 d;
  const std::uint64_t borrow = sub_borrow(d, a, b);
  U256 dp;
  add_carry(dp, d, kP);
  u256_cmov(d, dp, 0 - borrow);
  return d;
}

U256 fe_neg(const U256& a) { return fe_sub(U256::zero(), a); }

// Montgomery-domain inverse: xgcd on aR gives a^-1 R^-1; two extra REDC
// multiplications by R^2 lift it back to a^-1 R.
U256 fe_inv(const U256& a) {
  return mont_mul(mont_mul(mod_inv_binary(a, kP), kR2), kR2);
}

// Square-and-multiply in the Montgomery domain (variable time; used only
// on public data, e.g. the sqrt exponentiation).
U256 fe_pow(const U256& base_m, const U256& exp) {
  U256 result = kMontOne;
  for (int i = exp.highest_bit(); i >= 0; --i) {
    result = mont_sqr(result);
    if (exp.bit(static_cast<unsigned>(i))) result = mont_mul(result, base_m);
  }
  return result;
}

// Montgomery's batch-inversion trick, shared between domains and moduli:
// prefix products of the non-zero entries, one real inversion, then a
// backward sweep peeling off one inverse per entry.  Zeros are skipped
// (their prefix slot just repeats the running product) and stay zero.
void mod_inv_batch(U256* vals, std::size_t count,
                   U256 (*mul)(const U256&, const U256&),
                   U256 (*inv)(const U256&)) {
  if (count == 0) return;
  std::vector<U256> prefix(count);
  U256 acc = U256::from_u64(1);
  bool any = false;
  for (std::size_t i = 0; i < count; ++i) {
    prefix[i] = acc;
    if (!vals[i].is_zero()) {
      acc = mul(acc, vals[i]);
      any = true;
    }
  }
  if (!any) return;
  U256 inv_acc = inv(acc);
  for (std::size_t i = count; i-- > 0;) {
    if (vals[i].is_zero()) continue;
    U256 vi = vals[i];
    vals[i] = mul(inv_acc, prefix[i]);
    inv_acc = mul(inv_acc, vi);
  }
}

// Batch inversion in the Montgomery domain.  The neutral "1" of the
// prefix-product sweep must be the domain one, so wrap rather than reuse
// mod_inv_batch (whose accumulator starts at canonical 1).
void fe_inv_batch(U256* vals, std::size_t count) {
  if (count == 0) return;
  std::vector<U256> prefix(count);
  U256 acc = kMontOne;
  bool any = false;
  for (std::size_t i = 0; i < count; ++i) {
    prefix[i] = acc;
    if (!vals[i].is_zero()) {
      acc = mont_mul(acc, vals[i]);
      any = true;
    }
  }
  if (!any) return;
  U256 inv_acc = fe_inv(acc);
  for (std::size_t i = count; i-- > 0;) {
    if (vals[i].is_zero()) continue;
    U256 vi = vals[i];
    vals[i] = mont_mul(inv_acc, prefix[i]);
    inv_acc = mont_mul(inv_acc, vi);
  }
}

// ---- Jacobian-coordinate point arithmetic (Montgomery domain) --------------

struct Jac {
  U256 x, y, z;  // Montgomery-domain coordinates
  bool inf = true;

  static Jac from_affine(const AffinePoint& p) {
    if (p.infinity) return Jac{};
    return Jac{to_mont(p.x), to_mont(p.y), kMontOne, false};
  }
};

// A finite affine point with Montgomery-domain coordinates: the
// representation of every precomputed table entry (tables never contain
// the point at infinity).
struct MontAffine {
  U256 x, y;
};

AffinePoint jac_to_affine(const Jac& p) {
  if (p.inf) return AffinePoint::at_infinity();
  U256 zi = fe_inv(p.z);
  U256 zi2 = mont_sqr(zi);
  AffinePoint out;
  out.x = from_mont(mont_mul(p.x, zi2));
  out.y = from_mont(mont_mul(p.y, mont_mul(zi2, zi)));
  out.infinity = false;
  return out;
}

Jac jac_double(const Jac& p) {
  if (p.inf || p.y.is_zero()) return Jac{};
  // dbl-2009-l formulas for a = 0.
  U256 a = mont_sqr(p.x);
  U256 b = mont_sqr(p.y);
  U256 c = mont_sqr(b);
  U256 d = fe_sub(fe_sub(mont_sqr(fe_add(p.x, b)), a), c);
  d = fe_add(d, d);
  U256 e = fe_add(fe_add(a, a), a);
  U256 f = mont_sqr(e);
  Jac out;
  out.x = fe_sub(f, fe_add(d, d));
  U256 c8 = fe_add(c, c);
  c8 = fe_add(c8, c8);
  c8 = fe_add(c8, c8);
  out.y = fe_sub(mont_mul(e, fe_sub(d, out.x)), c8);
  out.z = mont_mul(fe_add(p.y, p.y), p.z);
  out.inf = false;
  return out;
}

Jac jac_add(const Jac& p, const Jac& q) {
  if (p.inf) return q;
  if (q.inf) return p;
  U256 z1z1 = mont_sqr(p.z);
  U256 z2z2 = mont_sqr(q.z);
  U256 u1 = mont_mul(p.x, z2z2);
  U256 u2 = mont_mul(q.x, z1z1);
  U256 s1 = mont_mul(p.y, mont_mul(q.z, z2z2));
  U256 s2 = mont_mul(q.y, mont_mul(p.z, z1z1));
  U256 h = fe_sub(u2, u1);
  U256 r = fe_sub(s2, s1);
  if (h.is_zero()) {
    if (r.is_zero()) return jac_double(p);
    return Jac{};  // P + (-P) = O
  }
  U256 hh = mont_sqr(h);
  U256 hhh = mont_mul(h, hh);
  U256 v = mont_mul(u1, hh);
  Jac out;
  out.x = fe_sub(fe_sub(mont_sqr(r), hhh), fe_add(v, v));
  out.y = fe_sub(mont_mul(r, fe_sub(v, out.x)), mont_mul(s1, hhh));
  out.z = mont_mul(mont_mul(p.z, q.z), h);
  out.inf = false;
  return out;
}

// Mixed addition p + q with q affine (z2 = 1): saves four multiplications
// and a squaring versus the general formula.  This is the work-horse of
// the variable-time table-driven fast paths.
Jac jac_add_affine(const Jac& p, const MontAffine& q) {
  if (p.inf) return Jac{q.x, q.y, kMontOne, false};
  U256 z1z1 = mont_sqr(p.z);
  U256 u2 = mont_mul(q.x, z1z1);
  U256 s2 = mont_mul(q.y, mont_mul(p.z, z1z1));
  U256 h = fe_sub(u2, p.x);
  U256 r = fe_sub(s2, p.y);
  if (h.is_zero()) {
    if (r.is_zero()) return jac_double(p);
    return Jac{};  // P + (-P) = O
  }
  U256 hh = mont_sqr(h);
  U256 hhh = mont_mul(h, hh);
  U256 v = mont_mul(p.x, hh);
  Jac out;
  out.x = fe_sub(fe_sub(mont_sqr(r), hhh), fe_add(v, v));
  out.y = fe_sub(mont_mul(r, fe_sub(v, out.x)), mont_mul(p.y, hhh));
  out.z = mont_mul(p.z, h);
  out.inf = false;
  return out;
}

Jac jac_mul(const U256& k, const Jac& p) {
  Jac acc;
  int top = k.highest_bit();
  for (int i = top; i >= 0; --i) {
    acc = jac_double(acc);
    if (k.bit(static_cast<unsigned>(i))) acc = jac_add(acc, p);
  }
  return acc;
}

// Normalizes `count` finite Jacobian points to z = 1 with a single field
// inversion, staying in the Montgomery domain (table entries are consumed
// by mixed additions, which want Montgomery coordinates).
void jac_batch_normalize(const Jac* in, MontAffine* out, std::size_t count) {
  std::vector<U256> zi(count);
  for (std::size_t i = 0; i < count; ++i) {
    assert(!in[i].inf);
    zi[i] = in[i].z;
  }
  fe_inv_batch(zi.data(), count);
  for (std::size_t i = 0; i < count; ++i) {
    U256 zi2 = mont_sqr(zi[i]);
    out[i].x = mont_mul(in[i].x, zi2);
    out[i].y = mont_mul(in[i].y, mont_mul(zi2, zi[i]));
  }
}

// ---- Fixed-base table for G -------------------------------------------------
//
// table[w][d-1] = d * 16^w * G for d = 1..15, w = 0..63: one window per
// nibble of the scalar, so k*G is at most 64 mixed additions with no
// doublings at all.  960 affine points (~60 kB), built once at startup
// with a single batched inversion.  Variable time (skips zero nibbles,
// indexes by nibble value): used by verification and ECDH only.

struct FixedBaseTable {
  std::array<std::array<MontAffine, 15>, 64> win;

  FixedBaseTable() {
    std::vector<Jac> pts;
    pts.reserve(64 * 15);
    Jac base = Jac{to_mont(kGx), to_mont(kGy), kMontOne, false};
    for (int w = 0; w < 64; ++w) {
      Jac cur = base;  // 1 * 16^w * G
      for (int d = 1; d <= 15; ++d) {
        pts.push_back(cur);
        cur = jac_add(cur, base);
      }
      base = cur;  // 16^(w+1) * G
    }
    std::vector<MontAffine> flat(pts.size());
    jac_batch_normalize(pts.data(), flat.data(), pts.size());
    for (std::size_t i = 0; i < flat.size(); ++i) {
      win[i / 15][i % 15] = flat[i];
    }
  }
};

const FixedBaseTable& fixed_base_table() {
  static const FixedBaseTable t;
  return t;
}

// Folds k*G into `acc` via the fixed-base table: one mixed addition per
// non-zero nibble, no doublings.
Jac add_fixed_base(Jac acc, const U256& k) {
  const FixedBaseTable& t = fixed_base_table();
  for (unsigned w = 0; w < 64; ++w) {
    const unsigned d =
        static_cast<unsigned>(k.w[w / 16] >> ((w % 16) * 4)) & 0xF;
    if (d != 0) acc = jac_add_affine(acc, t.win[w][d - 1]);
  }
  return acc;
}

AffinePoint point_mul_g(const U256& k) {
  return jac_to_affine(add_fixed_base(Jac{}, k));
}

// ---- Constant-time fixed-base ladder (the signing path) --------------------
//
// point_mul_g_ct never lets the nonce steer control flow or addresses:
//   * the scalar is blinded to k' = k + m*n (m a 64-bit mask drawn by the
//     caller) and forced odd by conditionally adding n once more — exact
//     on the curve since n*G = O;
//   * k' < 2^321 is recoded into 66 signed odd width-5 digits
//     (Joye-Tunstall: d_j = (k mod 64) - 32, k <- (k >> 5) | 1), so every
//     window performs exactly one table lookup and one addition — no
//     zero-digit skips;
//   * each lookup cmov-scans all 16 entries of its window's table;
//   * additions use branchless unified-complete formulas (Brier-Joye with
//     the libsecp256k1-style degenerate-case rescue), correct for
//     doubling, negation and infinity without a data-dependent branch.

constexpr int kCtWindows = 66;

// all-ones when a == b; valid for a ^ b < 2^63 (table indices here).
std::uint64_t ct_eq_mask(std::uint64_t a, std::uint64_t b) {
  return static_cast<std::uint64_t>(
      (static_cast<std::int64_t>(a ^ b) - 1) >> 63);
}

struct CtGenTable {
  // win[j][i] = (2i+1) * 32^j * G, Montgomery-domain affine (~68 kB).
  std::array<std::array<MontAffine, 16>, kCtWindows> win;

  CtGenTable() {
    std::vector<Jac> pts;
    pts.reserve(kCtWindows * 16);
    Jac base = Jac{to_mont(kGx), to_mont(kGy), kMontOne, false};
    for (int j = 0; j < kCtWindows; ++j) {
      Jac cur = base;  // 1 * 32^j * G
      const Jac twice = jac_double(base);
      for (int i = 0; i < 16; ++i) {
        pts.push_back(cur);
        cur = jac_add(cur, twice);
      }
      base = jac_add(pts.back(), base);  // (31 + 1) * 32^j * G
    }
    std::vector<MontAffine> flat(pts.size());
    jac_batch_normalize(pts.data(), flat.data(), pts.size());
    for (std::size_t i = 0; i < flat.size(); ++i) {
      win[i / 16][i % 16] = flat[i];
    }
  }
};

const CtGenTable& ct_gen_table() {
  static const CtGenTable t;
  return t;
}

MontAffine ct_lookup(const std::array<MontAffine, 16>& tbl, std::uint32_t idx,
                     std::uint64_t neg_mask) {
  CtProbe& probe = ct_probe();
  ++probe.lookups;
  MontAffine r{};
  for (std::uint32_t i = 0; i < 16; ++i) {
    const std::uint64_t take = ct_eq_mask(i, idx);
    u256_cmov(r.x, tbl[i].x, take);
    u256_cmov(r.y, tbl[i].y, take);
    ++probe.entries_scanned;
  }
  const U256 yn = fe_neg(r.y);
  u256_cmov(r.y, yn, neg_mask);
  return r;
}

// Accumulator for the constant-time chain: infinity is a mask, not a
// branch condition.
struct CtJac {
  U256 x, y, z;
  std::uint64_t inf = 0;  // all-ones when the accumulator is the identity
};

// Branchless unified-complete mixed addition p += q (q finite).  The
// Brier-Joye unified slope lambda = (U1^2 + U1*U2 + U2^2) / (Z*(S1+S2))
// covers both the chord and the tangent; when S1 + S2 == 0 but the points
// differ, the equivalent pair (2*S1, U1 - U2) rescues the slope; if the
// denominator is still zero the sum is the identity.  ~10M + 4S.
void ct_add_mixed(CtJac& p, const MontAffine& q) {
  const U256 zz = mont_sqr(p.z);
  const U256 u1 = p.x;
  const U256 u2 = mont_mul(q.x, zz);
  const U256 s1 = p.y;
  const U256 s2 = mont_mul(q.y, mont_mul(zz, p.z));
  const U256 t = fe_add(u1, u2);
  U256 m = fe_add(s1, s2);
  U256 rr = fe_sub(mont_sqr(t), mont_mul(u1, u2));
  const std::uint64_t deg = fe_is_zero_mask(m);
  u256_cmov(rr, fe_add(s1, s1), deg);
  u256_cmov(m, fe_sub(u1, u2), deg);
  const std::uint64_t infout = fe_is_zero_mask(m) & ~p.inf;
  const U256 mm = mont_sqr(m);
  const U256 u1mm = mont_mul(u1, mm);
  U256 x3 = fe_sub(mont_sqr(rr), mont_mul(t, mm));
  U256 y3 = fe_sub(mont_mul(rr, fe_sub(u1mm, x3)),
                   mont_mul(s1, mont_mul(m, mm)));
  U256 z3 = mont_mul(m, p.z);
  // P at infinity: the sum is just Q.
  u256_cmov(x3, q.x, p.inf);
  u256_cmov(y3, q.y, p.inf);
  u256_cmov(z3, kMontOne, p.inf);
  p.x = x3;
  p.y = y3;
  p.z = z3;
  p.inf = infout;
}

// kb (6 little-endian limbs) = k + blind*n, forced odd by conditionally
// adding n once more.  blind < 2^64, so kb < 2^321.
void ct_blind_scalar(const U256& k, std::uint64_t blind, std::uint64_t kb[6]) {
  u128 carry = 0;
  for (int i = 0; i < 4; ++i) {
    carry += static_cast<u128>(kN.w[i]) * blind;
    kb[i] = static_cast<std::uint64_t>(carry);
    carry >>= 64;
  }
  kb[4] = static_cast<std::uint64_t>(carry);
  kb[5] = 0;
  carry = 0;
  for (int i = 0; i < 4; ++i) {
    carry += static_cast<u128>(kb[i]) + k.w[i];
    kb[i] = static_cast<std::uint64_t>(carry);
    carry >>= 64;
  }
  for (int i = 4; i < 6; ++i) {
    carry += kb[i];
    kb[i] = static_cast<std::uint64_t>(carry);
    carry >>= 64;
  }
  // n is odd, so adding it under an all-ones mask flips parity.
  const std::uint64_t even = 0 - ((kb[0] & 1) ^ 1);
  carry = 0;
  for (int i = 0; i < 4; ++i) {
    carry += static_cast<u128>(kb[i]) + (kN.w[i] & even);
    kb[i] = static_cast<std::uint64_t>(carry);
    carry >>= 64;
  }
  for (int i = 4; i < 6; ++i) {
    carry += kb[i];
    kb[i] = static_cast<std::uint64_t>(carry);
    carry >>= 64;
  }
}

// Signed odd fixed-window recoding of an odd kb < 2^321: 66 digits, each
// odd in [-31, 31] (the last always 1), kb = sum digits[j] * 32^j.
// (kb - d) / 32 with d = (kb mod 64) - 32 equals (kb >> 5) | 1, so each
// step is a shift and an OR — no data-dependent carries.
void ct_recode(std::uint64_t kb[6], std::int32_t digits[kCtWindows]) {
  for (int j = 0; j < kCtWindows - 1; ++j) {
    digits[j] = static_cast<std::int32_t>(kb[0] & 63) - 32;
    for (int i = 0; i < 5; ++i) kb[i] = (kb[i] >> 5) | (kb[i + 1] << 59);
    kb[5] >>= 5;
    kb[0] |= 1;
  }
  digits[kCtWindows - 1] = static_cast<std::int32_t>(kb[0]);
}

}  // namespace

CtProbe& ct_probe() {
  static CtProbe probe;
  return probe;
}

AffinePoint point_mul_g_ct(const U256& k, const U256& blind) {
  assert(sc_is_valid(k));
  const CtGenTable& tbl = ct_gen_table();
  std::uint64_t kb[6];
  ct_blind_scalar(k, blind.w[0], kb);
  std::int32_t digits[kCtWindows];
  ct_recode(kb, digits);
  CtJac acc{U256::zero(), U256::zero(), kMontOne, ~0ULL};
  for (int j = 0; j < kCtWindows; ++j) {
    const std::int32_t d = digits[j];
    const std::int32_t sign = d >> 31;
    const std::uint32_t mag = static_cast<std::uint32_t>((d ^ sign) - sign);
    const std::uint32_t idx = (mag - 1) >> 1;
    const std::uint64_t neg =
        static_cast<std::uint64_t>(static_cast<std::int64_t>(sign));
    ct_add_mixed(acc, ct_lookup(tbl.win[j], idx, neg));
  }
  // 1 <= k < n, so k*G is never the identity; the branch below is
  // defensive only and its predicate is public either way.
  if (acc.inf != 0) return AffinePoint::at_infinity();
  // Rescale by a blind-derived lambda before handing z to the
  // variable-time xgcd inverse, decorrelating its branch pattern from the
  // chain's internal state.  (lambda^2*X, lambda^3*Y, lambda*Z) is the
  // same point.
  U256 lam = to_mont(blind);
  u256_cmov(lam, kMontOne, fe_is_zero_mask(lam));
  const U256 l2 = mont_sqr(lam);
  const Jac out{mont_mul(acc.x, l2), mont_mul(acc.y, mont_mul(l2, lam)),
                mont_mul(acc.z, lam), false};
  return jac_to_affine(out);
}

namespace {

// ---- wNAF -------------------------------------------------------------------

// Width-w non-adjacent form: digits[i] is odd in [-(2^(w-1)-1), 2^(w-1)-1]
// or zero, with at least w-1 zeros between non-zeros.  Returns the digit
// count.  Valid scalars (< n < 2^256 - 2^128) cannot carry out of 256 bits
// when a negative digit is added back.
int wnaf_digits(const U256& k_in, int width, std::int8_t* digits) {
  U256 k = k_in;
  int len = 0;
  const std::uint64_t mask = (1ULL << width) - 1;
  const std::int32_t half = 1 << (width - 1);
  while (!k.is_zero()) {
    std::int32_t d = 0;
    if (k.is_odd()) {
      d = static_cast<std::int32_t>(k.w[0] & mask);
      if (d >= half) d -= (1 << width);
      if (d >= 0) {
        U256 delta = U256::from_u64(static_cast<std::uint64_t>(d));
        sub_borrow(k, k, delta);
      } else {
        U256 delta = U256::from_u64(static_cast<std::uint64_t>(-d));
        std::uint64_t carry = add_carry(k, k, delta);
        assert(carry == 0);
        (void)carry;
      }
    }
    digits[len++] = static_cast<std::int8_t>(d);
    k = shr1(k);
  }
  return len;
}

// Odd multiples 1*P, 3*P, ..., (2*count-1)*P, batch-normalized, in the
// Montgomery domain.
void odd_multiples(const AffinePoint& p, MontAffine* out, std::size_t count) {
  std::vector<Jac> pts(count);
  pts[0] = Jac::from_affine(p);
  Jac twice = jac_double(pts[0]);
  for (std::size_t i = 1; i < count; ++i) pts[i] = jac_add(pts[i - 1], twice);
  jac_batch_normalize(pts.data(), out, count);
}

constexpr int kWindowQ = 5;  // per-call table: 8 points

Jac add_digit(Jac acc, std::int32_t digit, const MontAffine* table, bool negate) {
  MontAffine t = table[(std::abs(digit) - 1) / 2];
  if ((digit < 0) != negate) t.y = fe_neg(t.y);
  return jac_add_affine(acc, t);
}

// ---- GLV endomorphism -------------------------------------------------------
//
// secp256k1 has an efficiently computable endomorphism
// phi(x, y) = (beta*x, y) acting as scalar multiplication by lambda
// (lambda^3 = 1 mod n, beta^3 = 1 mod p).  Splitting k = k1 + k2*lambda
// with |k1|, |k2| <~ 2^128 (Babai rounding against the lattice basis
// (|b1|, -b2), (b2, |b1|+b2)... precomputed below) halves the doubling
// chain of a variable-base multiplication: k*Q = k1*Q + k2*phi(Q) shares
// ~129 doublings instead of 256.

// lambda, beta: the canonical cube roots.
constexpr U256 kLambda{{0xDF02967C1B23BD72ULL, 0x122E22EA20816678ULL,
                        0xA5261C028812645AULL, 0x5363AD4CC05C30E0ULL}};
constexpr U256 kBeta{{0xC1396C28719501EEULL, 0x9CF0497512F58995ULL,
                      0x6E64479EAC3434E9ULL, 0x7AE96A2B657C0710ULL}};
// |b1|, b2: the short lattice vector components (b1 is negative).
constexpr U256 kB1Abs{{0x6F547FA90ABFE4C3ULL, 0xE4437ED6010E8828ULL, 0, 0}};
constexpr U256 kB2{{0xE86C90E49284EB15ULL, 0x3086D221A7D46BCDULL, 0, 0}};
// g1 = round(2^384 * b2 / n), g2 = round(2^384 * |b1| / n): Barrett-style
// reciprocals so the rounded quotients c_i = round(k * b_i / n) reduce to
// a multiply and a shift.
constexpr U256 kG1{{0xE893209A45DBB031ULL, 0x3DAA8A1471E8CA7FULL,
                    0xE86C90E49284EB15ULL, 0x3086D221A7D46BCDULL}};
constexpr U256 kG2{{0x1571B4AE8AC47F71ULL, 0x221208AC9DF506C6ULL,
                    0x6F547FA90ABFE4C4ULL, 0xE4437ED6010E8828ULL}};

// Half the group order, for mapping residues to signed magnitudes.
constexpr U256 kNHalf{{0xDFE92F46681B20A0ULL, 0x5D576E7357A4501DULL,
                       0xFFFFFFFFFFFFFFFFULL, 0x7FFFFFFFFFFFFFFFULL}};

// beta in the Montgomery domain, for phi images of Montgomery tables.
const U256& beta_mont() {
  static const U256 b = to_mont(kBeta);
  return b;
}

struct GlvSplit {
  U256 k1, k2;      // magnitudes, <= ~2^128
  bool neg1, neg2;  // contribution signs
};

// round(k * g / 2^384): the product's top 128 bits, rounded by bit 383.
U256 mul_shift_384(const U256& k, const U256& g) {
  U512 t = mul_full(k, g);
  U256 q{{t.w[6], t.w[7], 0, 0}};
  if ((t.w[5] >> 63) != 0) add_carry(q, q, U256::from_u64(1));
  return q;
}

GlvSplit glv_split(const U256& k) {
  const U256 c1 = mul_shift_384(k, kG1);
  const U256 c2 = mul_shift_384(k, kG2);
  // k2 = -(c1*b1 + c2*b2) = c1*|b1| - c2*b2 (mod n); k1 = k - k2*lambda.
  U256 k2 = mod_sub(sc_mul(c1, kB1Abs), sc_mul(c2, kB2), kN);
  U256 k1 = mod_sub(k, sc_mul(k2, kLambda), kN);
  GlvSplit out;
  out.neg1 = k1 > kNHalf;
  out.k1 = out.neg1 ? sc_neg(k1) : k1;
  out.neg2 = k2 > kNHalf;
  out.k2 = out.neg2 ? sc_neg(k2) : k2;
  return out;
}

// The shared double-and-add chain for k*Q via the GLV split: ~129
// doublings, two interleaved width-5 wNAF digit streams over the odd
// multiples of Q and phi(Q).
Jac glv_chain(const U256& k, const AffinePoint& q) {
  GlvSplit s = glv_split(k);
  std::array<MontAffine, 8> q_tbl;
  odd_multiples(q, q_tbl.data(), q_tbl.size());
  std::array<MontAffine, 8> phi_tbl;
  for (std::size_t i = 0; i < q_tbl.size(); ++i) {
    phi_tbl[i] = MontAffine{mont_mul(beta_mont(), q_tbl[i].x), q_tbl[i].y};
  }
  std::int8_t d1[131];
  std::int8_t d2[131];
  const int l1 = wnaf_digits(s.k1, kWindowQ, d1);
  const int l2 = wnaf_digits(s.k2, kWindowQ, d2);
  const int len = l1 > l2 ? l1 : l2;
  Jac acc;
  for (int i = len - 1; i >= 0; --i) {
    acc = jac_double(acc);
    if (i < l1 && d1[i] != 0) acc = add_digit(acc, d1[i], q_tbl.data(), s.neg1);
    if (i < l2 && d2[i] != 0) acc = add_digit(acc, d2[i], phi_tbl.data(), s.neg2);
  }
  return acc;
}

// G is fixed, so its wNAF tables can be much wider than the per-call
// window for Q: width 8 needs the odd multiples 1*G..127*G (64 points)
// plus their phi images -- 8 kB, built once.
constexpr int kWindowG = 8;

struct GWnafTable {
  std::array<MontAffine, 64> g, phig;

  GWnafTable() {
    odd_multiples(secp_g(), g.data(), g.size());
    for (std::size_t i = 0; i < g.size(); ++i) {
      phig[i] = MontAffine{mont_mul(beta_mont(), g[i].x), g[i].y};
    }
  }
};

const GWnafTable& g_wnaf_table() {
  static const GWnafTable t;
  return t;
}

// u1*G + u2*Q with both scalars GLV-split onto one ~129-doubling chain:
// four interleaved wNAF digit streams (width 8 for the two fixed-base
// streams, width 5 for the two per-call Q streams).
Jac glv_chain2(const U256& u1, const U256& u2, const AffinePoint& q) {
  GlvSplit sg = glv_split(u1);
  GlvSplit sq = glv_split(u2);
  std::array<MontAffine, 8> q_tbl;
  odd_multiples(q, q_tbl.data(), q_tbl.size());
  std::array<MontAffine, 8> phi_tbl;
  for (std::size_t i = 0; i < q_tbl.size(); ++i) {
    phi_tbl[i] = MontAffine{mont_mul(beta_mont(), q_tbl[i].x), q_tbl[i].y};
  }
  const GWnafTable& gt = g_wnaf_table();
  std::int8_t dg1[131], dg2[131], dq1[131], dq2[131];
  const int lg1 = wnaf_digits(sg.k1, kWindowG, dg1);
  const int lg2 = wnaf_digits(sg.k2, kWindowG, dg2);
  const int lq1 = wnaf_digits(sq.k1, kWindowQ, dq1);
  const int lq2 = wnaf_digits(sq.k2, kWindowQ, dq2);
  int len = lg1;
  if (lg2 > len) len = lg2;
  if (lq1 > len) len = lq1;
  if (lq2 > len) len = lq2;
  Jac acc;
  for (int i = len - 1; i >= 0; --i) {
    acc = jac_double(acc);
    if (i < lg1 && dg1[i] != 0) acc = add_digit(acc, dg1[i], gt.g.data(), sg.neg1);
    if (i < lg2 && dg2[i] != 0) acc = add_digit(acc, dg2[i], gt.phig.data(), sg.neg2);
    if (i < lq1 && dq1[i] != 0) acc = add_digit(acc, dq1[i], q_tbl.data(), sq.neg1);
    if (i < lq2 && dq2[i] != 0) acc = add_digit(acc, dq2[i], phi_tbl.data(), sq.neg2);
  }
  return acc;
}

}  // namespace

const U256& secp_p() { return kP; }
const U256& secp_n() { return kN; }

U256 fp_add(const U256& a, const U256& b) { return mod_add(a, b, kP); }
U256 fp_sub(const U256& a, const U256& b) { return mod_sub(a, b, kP); }
// Canonical-domain multiplication via one to_mont and one REDC multiply:
// mont_mul(aR, b) = a*b.  Exact for any b < 2^256.
U256 fp_mul(const U256& a, const U256& b) { return mont_mul(to_mont(a), b); }
U256 fp_sqr(const U256& a) { return mont_mul(to_mont(a), a); }
U256 fp_neg(const U256& a) { return a.is_zero() ? a : mod_sub(U256::zero(), a, kP); }

U256 fp_mul_schoolbook(const U256& a, const U256& b) {
  return reduce512(mul_full(a, b), kP, kC, 1);
}
U256 fp_sqr_schoolbook(const U256& a) {
  return reduce512(sqr_full(a), kP, kC, 1);
}

U256 fp_inv(const U256& a) {
  assert(!a.is_zero());
  return mod_inv_binary(a, kP);
}

U256 fp_inv_fermat(const U256& a) {
  assert(!a.is_zero());
  U256 exp;  // p - 2
  sub_borrow(exp, kP, U256::from_u64(2));
  return from_mont(fe_pow(to_mont(a), exp));
}

void fp_inv_batch(U256* vals, std::size_t count) {
  mod_inv_batch(vals, count, &fp_mul, &fp_inv);
}

std::optional<U256> fp_sqrt(const U256& a) {
  if (a.is_zero()) return U256::zero();
  // p = 3 mod 4, so a^((p+1)/4) squares back to a exactly when a is a
  // quadratic residue; the final check rejects non-residues.  The ladder
  // runs in the Montgomery domain (one conversion each way).
  static const U256 kSqrtExp = [] {
    U256 e;
    add_carry(e, kP, U256::from_u64(1));
    return shr1(shr1(e));
  }();
  const U256 am = to_mont(a);
  U256 rm = fe_pow(am, kSqrtExp);
  if (mont_sqr(rm) != am) return std::nullopt;
  return from_mont(rm);
}

U256 sc_add(const U256& a, const U256& b) { return mod_add(a, b, kN); }
U256 sc_mul(const U256& a, const U256& b) { return reduce512(mul_full(a, b), kN, kD, 3); }
U256 sc_neg(const U256& a) { return a.is_zero() ? a : mod_sub(U256::zero(), a, kN); }
U256 sc_reduce(const U256& a) { return reduce512(U512::from_u256(a), kN, kD, 3); }
bool sc_is_valid(const U256& a) { return !a.is_zero() && a < kN; }

U256 sc_inv(const U256& a) {
  assert(!a.is_zero());
  return mod_inv_binary(a, kN);
}

U256 sc_inv_fermat(const U256& a) {
  assert(!a.is_zero());
  U256 exp;  // n - 2
  sub_borrow(exp, kN, U256::from_u64(2));
  U256 result = U256::from_u64(1);
  for (int i = exp.highest_bit(); i >= 0; --i) {
    result = sc_mul(result, result);
    if (exp.bit(static_cast<unsigned>(i))) result = sc_mul(result, a);
  }
  return result;
}

void sc_inv_batch(U256* vals, std::size_t count) {
  mod_inv_batch(vals, count, &sc_mul, &sc_inv);
}

const AffinePoint& secp_g() {
  static const AffinePoint g{kGx, kGy, false};
  return g;
}

bool AffinePoint::on_curve() const {
  if (infinity) return true;
  if (x >= kP || y >= kP) return false;
  U256 lhs = fp_sqr(y);
  U256 rhs = fp_add(fp_mul(fp_sqr(x), x), U256::from_u64(7));
  return lhs == rhs;
}

AffinePoint point_add(const AffinePoint& a, const AffinePoint& b) {
  return jac_to_affine(jac_add(Jac::from_affine(a), Jac::from_affine(b)));
}

AffinePoint point_double(const AffinePoint& a) {
  return jac_to_affine(jac_double(Jac::from_affine(a)));
}

AffinePoint point_neg(const AffinePoint& a) {
  if (a.infinity) return a;
  return AffinePoint{a.x, fp_neg(a.y), false};
}

AffinePoint point_mul(const U256& k, const AffinePoint& p) {
  if (k.is_zero() || p.infinity) return AffinePoint::at_infinity();
  if (p.x == kGx && p.y == kGy) return point_mul_g(k);
  return jac_to_affine(glv_chain(k, p));
}

AffinePoint point_mul2(const U256& u1, const U256& u2, const AffinePoint& q) {
  if (u2.is_zero() || q.infinity) {
    return u1.is_zero() ? AffinePoint::at_infinity() : point_mul_g(u1);
  }
  if (u1.is_zero()) return point_mul(u2, q);
  return jac_to_affine(glv_chain2(u1, u2, q));
}

bool point_mul2_check_r(const U256& u1, const U256& u2, const AffinePoint& q,
                        const U256& r) {
  if (u2.is_zero() || q.infinity || r.is_zero() || !(r < kN)) return false;
  Jac acc = u1.is_zero() ? glv_chain(u2, q) : glv_chain2(u1, u2, q);
  if (acc.inf) return false;
  // R.x mod n == r without normalizing: the affine x is X/Z^2, so check
  // X == x'*Z^2 for each field element x' congruent to r mod n.  Since
  // r < n and p - n < 2^129, the only candidates are r and r + n.  (In
  // the Montgomery domain: to_mont(x')*Z^2mont*R^-1 == Xmont.)
  const U256 z2 = mont_sqr(acc.z);
  if (mont_mul(to_mont(r), z2) == acc.x) return true;
  U256 rn;
  if (add_carry(rn, r, kN) == 0 && rn < kP) {
    if (mont_mul(to_mont(rn), z2) == acc.x) return true;
  }
  return false;
}

AffinePoint point_mul_slow(const U256& k, const AffinePoint& p) {
  if (k.is_zero() || p.infinity) return AffinePoint::at_infinity();
  return jac_to_affine(jac_mul(k, Jac::from_affine(p)));
}

AffinePoint point_mul2_slow(const U256& u1, const U256& u2, const AffinePoint& q) {
  Jac a = u1.is_zero() ? Jac{} : jac_mul(u1, Jac::from_affine(secp_g()));
  Jac b = (u2.is_zero() || q.infinity) ? Jac{} : jac_mul(u2, Jac::from_affine(q));
  return jac_to_affine(jac_add(a, b));
}

namespace {

// Per-base state for the interleaved MSM chain: the GLV split plus the
// two wNAF digit streams it produces (second stream empty when the split
// leaves k2 = 0, e.g. for scalars that are already ~128 bits).
struct MsmStream {
  GlvSplit split;
  std::int8_t d1[131];
  std::int8_t d2[131];
  int l1 = 0;
  int l2 = 0;
};

}  // namespace

AffinePoint point_mul_multi(const MulTerm* terms, std::size_t count) {
  // Partition: fixed-base contributions aggregate into one scalar (every
  // finite secp256k1 point has prime order n, so sums of coefficients of
  // the same base reduce mod n exactly); everything else keeps its own
  // digit streams on the shared doubling chain.
  U256 kg = U256::zero();
  std::vector<U256> var_k;
  std::vector<AffinePoint> var_p;
  var_k.reserve(count);
  var_p.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (terms[i].p.infinity) continue;
    U256 k = sc_reduce(terms[i].k);
    if (k.is_zero()) continue;
    if (terms[i].p.x == kGx && terms[i].p.y == kGy) {
      kg = sc_add(kg, k);
    } else {
      var_k.push_back(k);
      var_p.push_back(terms[i].p);
    }
  }

  const std::size_t nv = var_k.size();
  std::vector<MsmStream> streams(nv);
  // Odd multiples 1,3,..,15 of every variable base, all normalized at
  // once: nv tables cost one shared field inversion instead of one per
  // base (the win that makes per-call tables affordable here).
  std::vector<Jac> tbl_jac(nv * 8);
  for (std::size_t i = 0; i < nv; ++i) {
    MsmStream& s = streams[i];
    s.split = glv_split(var_k[i]);
    if (!s.split.k1.is_zero()) s.l1 = wnaf_digits(s.split.k1, kWindowQ, s.d1);
    if (!s.split.k2.is_zero()) s.l2 = wnaf_digits(s.split.k2, kWindowQ, s.d2);
    Jac* t = &tbl_jac[i * 8];
    t[0] = Jac::from_affine(var_p[i]);
    Jac twice = jac_double(t[0]);
    for (std::size_t j = 1; j < 8; ++j) t[j] = jac_add(t[j - 1], twice);
  }
  std::vector<MontAffine> tbl(nv * 8);
  jac_batch_normalize(tbl_jac.data(), tbl.data(), nv * 8);
  // phi images only for streams that actually emit lambda-half digits.
  std::vector<MontAffine> phi_tbl(nv * 8);
  for (std::size_t i = 0; i < nv; ++i) {
    if (streams[i].l2 == 0) continue;
    for (std::size_t j = 0; j < 8; ++j) {
      const MontAffine& q = tbl[i * 8 + j];
      phi_tbl[i * 8 + j] = MontAffine{mont_mul(beta_mont(), q.x), q.y};
    }
  }

  // Aggregated fixed-base scalar rides the same chain through the static
  // width-8 G tables.
  GlvSplit sg{};
  std::int8_t dg1[131], dg2[131];
  int lg1 = 0, lg2 = 0;
  const GWnafTable* gt = nullptr;
  if (!kg.is_zero()) {
    gt = &g_wnaf_table();
    sg = glv_split(kg);
    if (!sg.k1.is_zero()) lg1 = wnaf_digits(sg.k1, kWindowG, dg1);
    if (!sg.k2.is_zero()) lg2 = wnaf_digits(sg.k2, kWindowG, dg2);
  }

  int len = lg1 > lg2 ? lg1 : lg2;
  for (const MsmStream& s : streams) {
    if (s.l1 > len) len = s.l1;
    if (s.l2 > len) len = s.l2;
  }

  Jac acc;
  for (int i = len - 1; i >= 0; --i) {
    acc = jac_double(acc);
    if (i < lg1 && dg1[i] != 0) acc = add_digit(acc, dg1[i], gt->g.data(), sg.neg1);
    if (i < lg2 && dg2[i] != 0) acc = add_digit(acc, dg2[i], gt->phig.data(), sg.neg2);
    for (std::size_t t = 0; t < nv; ++t) {
      const MsmStream& s = streams[t];
      if (i < s.l1 && s.d1[i] != 0) {
        acc = add_digit(acc, s.d1[i], &tbl[t * 8], s.split.neg1);
      }
      if (i < s.l2 && s.d2[i] != 0) {
        acc = add_digit(acc, s.d2[i], &phi_tbl[t * 8], s.split.neg2);
      }
    }
  }
  return jac_to_affine(acc);
}

AffinePoint point_mul_multi_slow(const MulTerm* terms, std::size_t count) {
  Jac acc;
  for (std::size_t i = 0; i < count; ++i) {
    if (terms[i].p.infinity) continue;
    U256 k = sc_reduce(terms[i].k);
    if (k.is_zero()) continue;
    acc = jac_add(acc, jac_mul(k, Jac::from_affine(terms[i].p)));
  }
  return jac_to_affine(acc);
}

Bytes point_encode(const AffinePoint& p) {
  assert(!p.infinity);
  Bytes out = p.x.to_bytes_be();
  Bytes y = p.y.to_bytes_be();
  out.insert(out.end(), y.begin(), y.end());
  return out;
}

std::optional<AffinePoint> point_decode(BytesView b) {
  if (b.size() != 64) return std::nullopt;
  AffinePoint p;
  p.x = U256::from_bytes_be(b.subspan(0, 32));
  p.y = U256::from_bytes_be(b.subspan(32, 32));
  p.infinity = false;
  if (!p.on_curve()) return std::nullopt;
  return p;
}

}  // namespace gdp::crypto
