#include "crypto/secp256k1.hpp"

#include <cassert>

namespace gdp::crypto {

namespace {

// p = 2^256 - 2^32 - 977
constexpr U256 kP{{0xFFFFFFFEFFFFFC2FULL, 0xFFFFFFFFFFFFFFFFULL,
                   0xFFFFFFFFFFFFFFFFULL, 0xFFFFFFFFFFFFFFFFULL}};
// C = 2^256 - p = 2^32 + 977
constexpr U256 kC{{0x1000003D1ULL, 0, 0, 0}};

// n = group order
constexpr U256 kN{{0xBFD25E8CD0364141ULL, 0xBAAEDCE6AF48A03BULL,
                   0xFFFFFFFFFFFFFFFEULL, 0xFFFFFFFFFFFFFFFFULL}};
// D = 2^256 - n (129 bits)
constexpr U256 kD{{0x402DA1732FC9BEBFULL, 0x4551231950B75FC4ULL, 1, 0}};

constexpr U256 kGx{{0x59F2815B16F81798ULL, 0x029BFCDB2DCE28D9ULL,
                    0x55A06295CE870B07ULL, 0x79BE667EF9DCBBACULL}};
constexpr U256 kGy{{0x9C47D08FFB10D4B8ULL, 0xFD17B448A6855419ULL,
                    0x5DA4FBFC0E1108A8ULL, 0x483ADA7726A3C465ULL}};

// Generic "x mod (2^256 - delta)" for delta < 2^130: fold the high half
// down (x = hi*delta + lo mod m) until the high half vanishes, then
// conditionally subtract m.
U256 reduce512(const U512& x, const U256& m, const U256& delta) {
  U512 acc = x;
  while (!acc.hi().is_zero()) {
    acc = add512(mul_full(acc.hi(), delta), U512::from_u256(acc.lo()));
  }
  U256 r = acc.lo();
  while (r >= m) sub_borrow(r, r, m);
  return r;
}

U256 mod_add(const U256& a, const U256& b, const U256& m) {
  U256 out;
  std::uint64_t carry = add_carry(out, a, b);
  // a,b < m so a+b < 2m < 2^257; one conditional subtraction suffices.
  if (carry != 0 || out >= m) sub_borrow(out, out, m);
  return out;
}

U256 mod_sub(const U256& a, const U256& b, const U256& m) {
  U256 out;
  if (sub_borrow(out, a, b) != 0) add_carry(out, out, m);
  return out;
}

U256 mod_pow(const U256& base, const U256& exp,
             U256 (*mul)(const U256&, const U256&)) {
  U256 result = U256::from_u64(1);
  int top = exp.highest_bit();
  for (int i = top; i >= 0; --i) {
    result = mul(result, result);
    if (exp.bit(static_cast<unsigned>(i))) result = mul(result, base);
  }
  return result;
}

// ---- Jacobian-coordinate point arithmetic ----------------------------------

struct Jac {
  U256 x, y, z;
  bool inf = true;

  static Jac from_affine(const AffinePoint& p) {
    if (p.infinity) return Jac{};
    return Jac{p.x, p.y, U256::from_u64(1), false};
  }
};

AffinePoint jac_to_affine(const Jac& p) {
  if (p.inf) return AffinePoint::at_infinity();
  U256 zi = fp_inv(p.z);
  U256 zi2 = fp_sqr(zi);
  AffinePoint out;
  out.x = fp_mul(p.x, zi2);
  out.y = fp_mul(p.y, fp_mul(zi2, zi));
  out.infinity = false;
  return out;
}

Jac jac_double(const Jac& p) {
  if (p.inf || p.y.is_zero()) return Jac{};
  // dbl-2009-l formulas for a = 0.
  U256 a = fp_sqr(p.x);
  U256 b = fp_sqr(p.y);
  U256 c = fp_sqr(b);
  U256 d = fp_sub(fp_sub(fp_sqr(fp_add(p.x, b)), a), c);
  d = fp_add(d, d);
  U256 e = fp_add(fp_add(a, a), a);
  U256 f = fp_sqr(e);
  Jac out;
  out.x = fp_sub(f, fp_add(d, d));
  U256 c8 = fp_add(c, c);
  c8 = fp_add(c8, c8);
  c8 = fp_add(c8, c8);
  out.y = fp_sub(fp_mul(e, fp_sub(d, out.x)), c8);
  out.z = fp_mul(fp_add(p.y, p.y), p.z);
  out.inf = false;
  return out;
}

Jac jac_add(const Jac& p, const Jac& q) {
  if (p.inf) return q;
  if (q.inf) return p;
  U256 z1z1 = fp_sqr(p.z);
  U256 z2z2 = fp_sqr(q.z);
  U256 u1 = fp_mul(p.x, z2z2);
  U256 u2 = fp_mul(q.x, z1z1);
  U256 s1 = fp_mul(p.y, fp_mul(q.z, z2z2));
  U256 s2 = fp_mul(q.y, fp_mul(p.z, z1z1));
  U256 h = fp_sub(u2, u1);
  U256 r = fp_sub(s2, s1);
  if (h.is_zero()) {
    if (r.is_zero()) return jac_double(p);
    return Jac{};  // P + (-P) = O
  }
  U256 hh = fp_sqr(h);
  U256 hhh = fp_mul(h, hh);
  U256 v = fp_mul(u1, hh);
  Jac out;
  out.x = fp_sub(fp_sub(fp_sqr(r), hhh), fp_add(v, v));
  out.y = fp_sub(fp_mul(r, fp_sub(v, out.x)), fp_mul(s1, hhh));
  out.z = fp_mul(fp_mul(p.z, q.z), h);
  out.inf = false;
  return out;
}

Jac jac_mul(const U256& k, const Jac& p) {
  Jac acc;
  int top = k.highest_bit();
  for (int i = top; i >= 0; --i) {
    acc = jac_double(acc);
    if (k.bit(static_cast<unsigned>(i))) acc = jac_add(acc, p);
  }
  return acc;
}

}  // namespace

const U256& secp_p() { return kP; }
const U256& secp_n() { return kN; }

U256 fp_add(const U256& a, const U256& b) { return mod_add(a, b, kP); }
U256 fp_sub(const U256& a, const U256& b) { return mod_sub(a, b, kP); }
U256 fp_mul(const U256& a, const U256& b) { return reduce512(mul_full(a, b), kP, kC); }
U256 fp_sqr(const U256& a) { return fp_mul(a, a); }
U256 fp_neg(const U256& a) { return a.is_zero() ? a : mod_sub(U256::zero(), a, kP); }

U256 fp_inv(const U256& a) {
  assert(!a.is_zero());
  U256 exp;  // p - 2
  sub_borrow(exp, kP, U256::from_u64(2));
  return mod_pow(a, exp, &fp_mul);
}

U256 sc_add(const U256& a, const U256& b) { return mod_add(a, b, kN); }
U256 sc_mul(const U256& a, const U256& b) { return reduce512(mul_full(a, b), kN, kD); }
U256 sc_neg(const U256& a) { return a.is_zero() ? a : mod_sub(U256::zero(), a, kN); }
U256 sc_reduce(const U256& a) { return reduce512(U512::from_u256(a), kN, kD); }
bool sc_is_valid(const U256& a) { return !a.is_zero() && a < kN; }

U256 sc_inv(const U256& a) {
  assert(!a.is_zero());
  U256 exp;  // n - 2
  sub_borrow(exp, kN, U256::from_u64(2));
  return mod_pow(a, exp, &sc_mul);
}

const AffinePoint& secp_g() {
  static const AffinePoint g{kGx, kGy, false};
  return g;
}

bool AffinePoint::on_curve() const {
  if (infinity) return true;
  if (x >= kP || y >= kP) return false;
  U256 lhs = fp_sqr(y);
  U256 rhs = fp_add(fp_mul(fp_sqr(x), x), U256::from_u64(7));
  return lhs == rhs;
}

AffinePoint point_add(const AffinePoint& a, const AffinePoint& b) {
  return jac_to_affine(jac_add(Jac::from_affine(a), Jac::from_affine(b)));
}

AffinePoint point_double(const AffinePoint& a) {
  return jac_to_affine(jac_double(Jac::from_affine(a)));
}

AffinePoint point_neg(const AffinePoint& a) {
  if (a.infinity) return a;
  return AffinePoint{a.x, fp_neg(a.y), false};
}

AffinePoint point_mul(const U256& k, const AffinePoint& p) {
  if (k.is_zero() || p.infinity) return AffinePoint::at_infinity();
  return jac_to_affine(jac_mul(k, Jac::from_affine(p)));
}

AffinePoint point_mul2(const U256& u1, const U256& u2, const AffinePoint& q) {
  Jac a = u1.is_zero() ? Jac{} : jac_mul(u1, Jac::from_affine(secp_g()));
  Jac b = (u2.is_zero() || q.infinity) ? Jac{} : jac_mul(u2, Jac::from_affine(q));
  return jac_to_affine(jac_add(a, b));
}

Bytes point_encode(const AffinePoint& p) {
  assert(!p.infinity);
  Bytes out = p.x.to_bytes_be();
  Bytes y = p.y.to_bytes_be();
  out.insert(out.end(), y.begin(), y.end());
  return out;
}

std::optional<AffinePoint> point_decode(BytesView b) {
  if (b.size() != 64) return std::nullopt;
  AffinePoint p;
  p.x = U256::from_bytes_be(b.subspan(0, 32));
  p.y = U256::from_bytes_be(b.subspan(32, 32));
  p.infinity = false;
  if (!p.on_curve()) return std::nullopt;
  return p;
}

}  // namespace gdp::crypto
