// Fixed-width 256/512-bit unsigned integers.
//
// These back the secp256k1 field and scalar arithmetic in `ec.cpp`.
// Limbs are 64-bit, little-endian (w[0] is least significant).  The type is
// a plain aggregate (no invariant), per Core Guidelines C.1/C.2.
#pragma once

#include <array>
#include <compare>
#include <cstdint>

#include "common/bytes.hpp"

namespace gdp::crypto {

struct U512;

struct U256 {
  std::array<std::uint64_t, 4> w{};

  static constexpr U256 zero() { return U256{}; }
  static constexpr U256 from_u64(std::uint64_t v) { return U256{{v, 0, 0, 0}}; }

  /// Big-endian 32-byte decode (the external representation of hashes,
  /// keys and signature halves).
  static U256 from_bytes_be(BytesView b);  // requires b.size() == 32
  Bytes to_bytes_be() const;

  bool is_zero() const { return (w[0] | w[1] | w[2] | w[3]) == 0; }
  bool is_odd() const { return (w[0] & 1) != 0; }
  bool bit(unsigned i) const { return (w[i / 64] >> (i % 64)) & 1; }
  /// Index of the highest set bit, or -1 if zero.
  int highest_bit() const;

  friend std::strong_ordering operator<=>(const U256& a, const U256& b) {
    for (int i = 3; i >= 0; --i) {
      if (a.w[i] != b.w[i]) return a.w[i] <=> b.w[i];
    }
    return std::strong_ordering::equal;
  }
  friend bool operator==(const U256&, const U256&) = default;
};

struct U512 {
  std::array<std::uint64_t, 8> w{};

  bool is_zero() const;
  /// The low 256 bits.
  U256 lo() const { return U256{{w[0], w[1], w[2], w[3]}}; }
  /// The high 256 bits.
  U256 hi() const { return U256{{w[4], w[5], w[6], w[7]}}; }
  static U512 from_u256(const U256& v) {
    return U512{{v.w[0], v.w[1], v.w[2], v.w[3], 0, 0, 0, 0}};
  }
};

/// out = a + b, returns carry-out (0/1).
std::uint64_t add_carry(U256& out, const U256& a, const U256& b);
/// out = a - b, returns borrow-out (0/1).
std::uint64_t sub_borrow(U256& out, const U256& a, const U256& b);
/// 256x256 -> 512-bit schoolbook multiply.
U512 mul_full(const U256& a, const U256& b);
/// a * b where only the low `b_limbs` limbs of b may be non-zero; skips
/// the guaranteed-zero rows of the schoolbook.  The special-prime folds
/// (p = 2^256 - C, n = 2^256 - D) multiply by 33- and 129-bit constants,
/// so this cuts a reduction from 16 to 4 resp. 12 word products.
U512 mul_small(const U256& a, const U256& b, int b_limbs);
/// a * a, exploiting the symmetry of squaring (10 word products vs 16).
U512 sqr_full(const U256& a);
/// a + b over 512 bits (carry beyond bit 512 discarded; callers guarantee
/// no overflow).
U512 add512(const U512& a, const U512& b);
/// a - b over 512 bits; callers guarantee a >= b.
U512 sub512(const U512& a, const U512& b);
/// Comparison over 512 bits.
std::strong_ordering cmp512(const U512& a, const U512& b);
/// Left shift by one bit.
U512 shl1(const U512& a);
/// a >> 1 with `high_bit` (0/1) shifted into bit 255.  Used by the binary
/// extended-GCD inverse, where (x + m) can carry out of 256 bits before
/// halving.
U256 shr1(const U256& a, std::uint64_t high_bit = 0);

/// Reference (slow) a mod m via binary long division; used by property
/// tests to cross-check the specialized reductions.
U256 mod_generic(const U512& a, const U256& m);

}  // namespace gdp::crypto
