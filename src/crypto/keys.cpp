#include "crypto/keys.hpp"

#include <cassert>

#include "crypto/hmac.hpp"

namespace gdp::crypto {

Bytes Signature::encode() const {
  Bytes out = r.to_bytes_be();
  Bytes sb = s.to_bytes_be();
  out.insert(out.end(), sb.begin(), sb.end());
  return out;
}

std::optional<Signature> Signature::decode(BytesView b) {
  if (b.size() != 64) return std::nullopt;
  Signature sig;
  sig.r = U256::from_bytes_be(b.subspan(0, 32));
  sig.s = U256::from_bytes_be(b.subspan(32, 32));
  if (!sc_is_valid(sig.r) || !sc_is_valid(sig.s)) return std::nullopt;
  return sig;
}

std::optional<PublicKey> PublicKey::decode(BytesView b) {
  auto point = point_decode(b);
  if (!point) return std::nullopt;
  return PublicKey(*point);
}

bool PublicKey::verify(BytesView message, const Signature& sig) const {
  return verify_digest(sha256(message), sig);
}

bool PublicKey::verify_digest(const Digest& digest, const Signature& sig) const {
  if (!sc_is_valid(sig.r) || !sc_is_valid(sig.s)) return false;
  if (point_.infinity) return false;
  U256 z = sc_reduce(U256::from_bytes_be(BytesView(digest.data(), digest.size())));
  U256 w = sc_inv(sig.s);
  U256 u1 = sc_mul(z, w);
  U256 u2 = sc_mul(sig.r, w);
  AffinePoint rp = point_mul2(u1, u2, point_);
  if (rp.infinity) return false;
  // r must equal R.x mod n.
  return sc_reduce(rp.x) == sig.r;
}

PrivateKey::PrivateKey(const U256& d)
    : d_(d), pub_(point_mul(d, secp_g())) {
  assert(sc_is_valid(d_));
}

PrivateKey PrivateKey::generate(Rng& rng) {
  for (;;) {
    Digest d = sha256(rng.next_bytes(48));
    U256 scalar = sc_reduce(U256::from_bytes_be(BytesView(d.data(), d.size())));
    if (sc_is_valid(scalar)) return PrivateKey(scalar);
  }
}

std::optional<PrivateKey> PrivateKey::from_bytes(BytesView b) {
  if (b.size() != 32) return std::nullopt;
  U256 d = U256::from_bytes_be(b);
  if (!sc_is_valid(d)) return std::nullopt;
  return PrivateKey(d);
}

Signature PrivateKey::sign(BytesView message) const {
  return sign_digest(sha256(message));
}

Signature PrivateKey::sign_digest(const Digest& digest) const {
  U256 z = sc_reduce(U256::from_bytes_be(BytesView(digest.data(), digest.size())));
  Bytes d_bytes = d_.to_bytes_be();
  // Deterministic nonce in the spirit of RFC 6979: k derived by HMAC over
  // the private key, the message digest and a retry counter.
  for (std::uint32_t attempt = 0;; ++attempt) {
    Bytes nonce_input = concat(BytesView(digest.data(), digest.size()),
                               Bytes{static_cast<std::uint8_t>(attempt),
                                     static_cast<std::uint8_t>(attempt >> 8),
                                     static_cast<std::uint8_t>(attempt >> 16),
                                     static_cast<std::uint8_t>(attempt >> 24)});
    Digest kd = hmac_sha256(d_bytes, nonce_input);
    U256 k = sc_reduce(U256::from_bytes_be(BytesView(kd.data(), kd.size())));
    if (!sc_is_valid(k)) continue;

    AffinePoint rp = point_mul(k, secp_g());
    if (rp.infinity) continue;
    U256 r = sc_reduce(rp.x);
    if (r.is_zero()) continue;
    U256 s = sc_mul(sc_inv(k), sc_add(z, sc_mul(r, d_)));
    if (s.is_zero()) continue;
    return Signature{r, s};
  }
}

SymmetricKey ecdh_shared_key(const PrivateKey& mine, const PublicKey& theirs) {
  auto d = U256::from_bytes_be(mine.to_bytes());
  AffinePoint shared = point_mul(d, theirs.point());
  assert(!shared.infinity);
  Bytes x = shared.x.to_bytes_be();
  Digest key = sha256(x);
  SymmetricKey out;
  std::copy(key.begin(), key.end(), out.begin());
  return out;
}

}  // namespace gdp::crypto
