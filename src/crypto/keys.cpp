#include "crypto/keys.hpp"

#include <cassert>

#include "crypto/hmac.hpp"
#include "crypto/secp256k1_detail.hpp"

namespace gdp::crypto {

Bytes Signature::encode() const {
  Bytes out = r.to_bytes_be();
  Bytes sb = s.to_bytes_be();
  out.insert(out.end(), sb.begin(), sb.end());
  return out;
}

std::optional<Signature> Signature::decode(BytesView b) {
  if (b.size() != 64) return std::nullopt;
  Signature sig;
  sig.r = U256::from_bytes_be(b.subspan(0, 32));
  sig.s = U256::from_bytes_be(b.subspan(32, 32));
  if (!sc_is_valid(sig.r) || !sc_is_valid(sig.s)) return std::nullopt;
  return sig;
}

std::optional<PublicKey> PublicKey::decode(BytesView b) {
  auto point = point_decode(b);
  if (!point) return std::nullopt;
  return PublicKey(*point);
}

bool PublicKey::verify(BytesView message, const Signature& sig) const {
  return verify_digest(sha256(message), sig);
}

bool PublicKey::verify_digest(const Digest& digest, const Signature& sig) const {
  if (!sc_is_valid(sig.r) || !sc_is_valid(sig.s)) return false;
  if (point_.infinity) return false;
  U256 z = sc_reduce(U256::from_bytes_be(BytesView(digest.data(), digest.size())));
  U256 w = sc_inv(sig.s);
  U256 u1 = sc_mul(z, w);
  U256 u2 = sc_mul(sig.r, w);
  // r must equal R.x mod n; checked in Jacobian form to skip the final
  // field inversion of an affine conversion.
  return point_mul2_check_r(u1, u2, point_, sig.r);
}

PrivateKey::PrivateKey(const U256& d)
    : d_(d), pub_(point_mul_g_ct(d, U256::zero())) {
  assert(sc_is_valid(d_));
}

PrivateKey PrivateKey::generate(Rng& rng) {
  for (;;) {
    Digest d = sha256(rng.next_bytes(48));
    U256 scalar = sc_reduce(U256::from_bytes_be(BytesView(d.data(), d.size())));
    if (sc_is_valid(scalar)) return PrivateKey(scalar);
  }
}

std::optional<PrivateKey> PrivateKey::from_bytes(BytesView b) {
  if (b.size() != 32) return std::nullopt;
  U256 d = U256::from_bytes_be(b);
  if (!sc_is_valid(d)) return std::nullopt;
  return PrivateKey(d);
}

Signature PrivateKey::sign(BytesView message) const {
  return sign_digest(sha256(message));
}

namespace {

// RFC 6979 §3.2 deterministic-nonce generator: HMAC-DRBG over SHA-256
// seeded with int2octets(d) || bits2octets(H(m)).  For secp256k1
// qlen = hlen = 256, so bits2int is the identity and each round draws
// exactly one candidate.
class Rfc6979 {
 public:
  Rfc6979(const U256& d, const Digest& digest) {
    v_.fill(0x01);
    k_.fill(0x00);
    Bytes seed = d.to_bytes_be();
    Bytes h2 = sc_reduce(U256::from_bytes_be(BytesView(digest.data(), digest.size())))
                   .to_bytes_be();  // bits2octets(H(m))
    seed.insert(seed.end(), h2.begin(), h2.end());
    stir(0x00, seed);
    stir(0x01, seed);
  }

  /// Draws the next candidate nonce (V = HMAC_K(V); bits2int(V)).  The
  /// caller must reject out-of-range candidates via bump().
  U256 next() {
    v_ = hmac_sha256(key(), val());
    return U256::from_bytes_be(val());
  }

  /// Advances the DRBG state after a rejected candidate
  /// (K = HMAC_K(V || 0x00); V = HMAC_K(V)).
  void bump() {
    Bytes data(v_.begin(), v_.end());
    data.push_back(0x00);
    k_ = hmac_sha256(key(), data);
    v_ = hmac_sha256(key(), val());
  }

 private:
  BytesView key() const { return BytesView(k_.data(), k_.size()); }
  BytesView val() const { return BytesView(v_.data(), v_.size()); }

  void stir(std::uint8_t tag, BytesView seed) {
    Bytes data(v_.begin(), v_.end());
    data.push_back(tag);
    data.insert(data.end(), seed.begin(), seed.end());
    k_ = hmac_sha256(key(), data);
    v_ = hmac_sha256(key(), val());
  }

  Digest v_{};
  Digest k_{};
};

}  // namespace

U256 rfc6979_nonce(const U256& d, const Digest& digest) {
  Rfc6979 drbg(d, digest);
  for (;;) {
    U256 k = drbg.next();
    if (sc_is_valid(k)) return k;
    drbg.bump();
  }
}

Signature PrivateKey::sign_digest(const Digest& digest) const {
  U256 z = sc_reduce(U256::from_bytes_be(BytesView(digest.data(), digest.size())));
  Rfc6979 drbg(d_, digest);
  for (;;) {
    U256 k = drbg.next();
    if (!sc_is_valid(k)) {
      drbg.bump();
      continue;
    }
    // A second DRBG draw supplies the blinding material: scalar blinding
    // for the ladder plus z-randomization of the result.  Deterministic
    // (same d, digest -> same blind), and drawn *after* k so the nonce
    // stream — and with it every pinned RFC 6979 vector — is unchanged.
    U256 blind = drbg.next();
    AffinePoint rp = point_mul_g_ct(k, blind);
    if (!rp.infinity) {
      U256 r = sc_reduce(rp.x);
      if (!r.is_zero()) {
        // Blinded nonce inversion: invert b*k and multiply b back, so the
        // variable-time xgcd never sees a value correlated with k.
        U256 b = sc_reduce(blind);
        if (b.is_zero()) b = U256::from_u64(1);
        U256 kinv = sc_mul(sc_inv(sc_mul(b, k)), b);
        U256 s = sc_mul(kinv, sc_add(z, sc_mul(r, d_)));
        if (!s.is_zero()) {
          // Even-R normalization: (r, s) and (r, n-s) verify identically
          // (ECDSA malleability), but only one of them corresponds to the
          // nonce point with even y.  Emitting that one lets batch
          // verification reconstruct R from r without a sign ambiguity,
          // so honest signatures never fall off the batched fast path.
          // Branchless: the parity of R.y steers a cmov, not a branch.
          U256 sn = sc_neg(s);
          u256_cmov(s, sn, 0 - (rp.y.w[0] & 1));
          return Signature{r, s};
        }
      }
    }
    drbg.bump();
  }
}

Signature PrivateKey::sign_digest_vartime(const Digest& digest) const {
  U256 z = sc_reduce(U256::from_bytes_be(BytesView(digest.data(), digest.size())));
  Rfc6979 drbg(d_, digest);
  for (;;) {
    U256 k = drbg.next();
    if (!sc_is_valid(k)) {
      drbg.bump();
      continue;
    }
    // Mirror the constant-time signer's DRBG draw sequence exactly (the
    // blind draw advances the stream) so the two paths stay bit-identical
    // even through the astronomically unlikely degenerate-r/s retries.
    (void)drbg.next();
    AffinePoint rp = point_mul(k, secp_g());
    if (!rp.infinity) {
      U256 r = sc_reduce(rp.x);
      if (!r.is_zero()) {
        U256 s = sc_mul(sc_inv(k), sc_add(z, sc_mul(r, d_)));
        if (!s.is_zero()) {
          if (rp.y.is_odd()) s = sc_neg(s);
          return Signature{r, s};
        }
      }
    }
    drbg.bump();
  }
}

SymmetricKey ecdh_shared_key(const PrivateKey& mine, const PublicKey& theirs) {
  auto d = U256::from_bytes_be(mine.to_bytes());
  AffinePoint shared = point_mul(d, theirs.point());
  assert(!shared.infinity);
  Bytes x = shared.x.to_bytes_be();
  Digest key = sha256(x);
  SymmetricKey out;
  std::copy(key.begin(), key.end(), out.begin());
  return out;
}

}  // namespace gdp::crypto
