#include "crypto/hmac.hpp"

#include <cstring>

namespace gdp::crypto {

Digest hmac_sha256(BytesView key, BytesView data) {
  std::array<std::uint8_t, 64> block{};
  if (key.size() > 64) {
    Digest kd = sha256(key);
    std::memcpy(block.data(), kd.data(), kd.size());
  } else {
    std::memcpy(block.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, 64> ipad;
  std::array<std::uint8_t, 64> opad;
  for (int i = 0; i < 64; ++i) {
    ipad[i] = block[i] ^ 0x36;
    opad[i] = block[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(BytesView(ipad.data(), ipad.size())).update(data);
  Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(BytesView(opad.data(), opad.size()))
      .update(BytesView(inner_digest.data(), inner_digest.size()));
  return outer.finish();
}

bool hmac_verify(BytesView key, BytesView data, BytesView tag) {
  Digest expected = hmac_sha256(key, data);
  return constant_time_equal(BytesView(expected.data(), expected.size()), tag);
}

Bytes derive_key(BytesView ikm, std::string_view label, std::size_t n) {
  Bytes out;
  out.reserve(n);
  Bytes info = to_bytes(label);
  std::uint8_t counter = 1;
  Digest prev{};
  bool first = true;
  while (out.size() < n) {
    Bytes msg;
    if (!first) append(msg, BytesView(prev.data(), prev.size()));
    append(msg, info);
    msg.push_back(counter++);
    prev = hmac_sha256(ikm, msg);
    std::size_t take = std::min<std::size_t>(prev.size(), n - out.size());
    out.insert(out.end(), prev.begin(), prev.begin() + static_cast<std::ptrdiff_t>(take));
    first = false;
  }
  return out;
}

}  // namespace gdp::crypto
