// ECDSA key pairs, signatures, and ECDH session-key agreement.
//
// Every GDP principal — DataCapsule writer, owner, DataCapsule-server,
// GDP-router, organization — is identified by an ECDSA key pair; the
// SHA-256 fingerprint of the public key participates in the flat
// name-space.  Signing uses deterministic nonces per RFC 6979 (HMAC-DRBG
// with SHA-256) so no secure RNG is needed anywhere in the system and
// signatures are byte-for-byte reproducible across implementations.
#pragma once

#include <optional>

#include "common/bytes.hpp"
#include "common/name.hpp"
#include "common/rng.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/secp256k1.hpp"
#include "crypto/sha256.hpp"

namespace gdp::crypto {

/// An ECDSA signature, externally a 64-byte r||s big-endian string.
struct Signature {
  U256 r;
  U256 s;

  Bytes encode() const;
  static std::optional<Signature> decode(BytesView b);
  friend bool operator==(const Signature&, const Signature&) = default;
};

class PublicKey {
 public:
  explicit PublicKey(const AffinePoint& point) : point_(point) {}

  /// Decodes the 64-byte x||y form, rejecting off-curve points.
  static std::optional<PublicKey> decode(BytesView b);
  Bytes encode() const { return point_encode(point_); }

  /// SHA-256 of the encoded key — the key's flat-name-space identity.
  Name fingerprint() const { return digest_to_name(sha256(encode())); }

  /// Verifies sig over SHA-256(message).
  bool verify(BytesView message, const Signature& sig) const;
  bool verify_digest(const Digest& digest, const Signature& sig) const;

  const AffinePoint& point() const { return point_; }
  friend bool operator==(const PublicKey&, const PublicKey&) = default;

 private:
  AffinePoint point_;
};

class PrivateKey {
 public:
  /// Derives a key pair from the deterministic Rng (output is stretched
  /// through SHA-256 and reduced into the scalar field).
  static PrivateKey generate(Rng& rng);

  /// Restores a key from its 32-byte scalar; rejects 0 and >= n.
  static std::optional<PrivateKey> from_bytes(BytesView b);
  Bytes to_bytes() const { return d_.to_bytes_be(); }

  const PublicKey& public_key() const { return pub_; }

  Signature sign(BytesView message) const;

  /// Signs a digest with the constant-time scalar-multiplication ladder
  /// and a blinded nonce inversion: no secret-dependent branches, table
  /// indices, or memory addresses on the path from nonce to signature.
  Signature sign_digest(const Digest& digest) const;

  /// Reference signer on the variable-time fast paths (fixed-base comb,
  /// plain xgcd nonce inverse).  Bit-identical output to sign_digest();
  /// retained as the differential oracle for the constant-time path.
  /// Do not use outside tests.
  Signature sign_digest_vartime(const Digest& digest) const;

 private:
  explicit PrivateKey(const U256& d);

  U256 d_;
  PublicKey pub_;
};

/// The first RFC 6979 nonce candidate for (private scalar d, message
/// digest).  This is the k the signer uses unless r or s degenerates
/// (probability ~2^-256); exposed so tests can pin the published RFC 6979
/// secp256k1 vectors.
U256 rfc6979_nonce(const U256& d, const Digest& digest);

/// ECDH: both sides derive the same 32-byte symmetric key from
/// (my private, their public).  Used to set up the HMAC session between a
/// client and a DataCapsule-server (§V "Secure Responses").
SymmetricKey ecdh_shared_key(const PrivateKey& mine, const PublicKey& theirs);

}  // namespace gdp::crypto
