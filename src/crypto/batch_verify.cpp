#include "crypto/batch_verify.hpp"

#include <algorithm>

#include "crypto/chacha20.hpp"
#include "crypto/secp256k1_detail.hpp"
#include "crypto/sha256.hpp"

namespace gdp::crypto {

std::size_t BatchVerifier::add(const Digest& digest, const PublicKey& key,
                               const Signature& sig) {
  entries_.push_back(Entry{digest, key, sig});
  return entries_.size() - 1;
}

namespace {

// Per-entry state once an entry has been admitted to the batched check.
struct Prepared {
  U256 a;          // z * s^-1 * h   (contribution to the G coefficient)
  U256 c;          // z * s^-1 * r   (coefficient of Q)
  U256 z;          // random 128-bit coefficient (coefficient of -R)
  AffinePoint q;   // signer public key point
  AffinePoint rn;  // -R, lifted from sig.r with even y then negated
};

// Derives n 128-bit coefficients from ChaCha20 keyed by a hash of the
// seed and the full batch transcript.  Zero draws (probability 2^-128)
// bump to 1 so every entry keeps a non-trivial coefficient.
std::vector<U256> derive_coefficients(std::uint64_t seed,
                                      const std::vector<Bytes>& transcript,
                                      std::size_t n) {
  Bytes keyed;
  for (int i = 0; i < 8; ++i) {
    keyed.push_back(static_cast<std::uint8_t>(seed >> (8 * i)));
  }
  for (const Bytes& t : transcript) {
    keyed.insert(keyed.end(), t.begin(), t.end());
  }
  Digest key_digest = sha256(keyed);
  SymmetricKey key;
  std::copy(key_digest.begin(), key_digest.end(), key.begin());
  Bytes stream = chacha20_xor(key, Nonce96{}, 0, Bytes(n * 16, 0));
  std::vector<U256> zs(n);
  for (std::size_t i = 0; i < n; ++i) {
    U256 z = U256::zero();
    for (int b = 0; b < 8; ++b) {
      z.w[0] |= static_cast<std::uint64_t>(stream[i * 16 + b]) << (8 * b);
      z.w[1] |= static_cast<std::uint64_t>(stream[i * 16 + 8 + b]) << (8 * b);
    }
    if (z.is_zero()) z = U256::from_u64(1);
    zs[i] = z;
  }
  return zs;
}

// Lifts the even-y curve point at x = r, the R point implied by an
// even-R normalized signature.  Fails when x^3 + 7 is a non-residue
// (r did not come from a curve point's x-coordinate).
std::optional<AffinePoint> lift_even_r(const U256& r) {
  U256 y2 = fp_add(fp_mul(fp_sqr(r), r), U256::from_u64(7));
  std::optional<U256> y = fp_sqrt(y2);
  if (!y) return std::nullopt;
  if (y->is_odd()) *y = fp_neg(*y);
  return AffinePoint{r, *y, false};
}

}  // namespace

BatchVerifier::Result BatchVerifier::verify_all() {
  Result res;
  const std::size_t n = entries_.size();
  auto settle_serial = [&](std::size_t i) {
    ++res.serial_fallbacks;
    if (!entries_[i].key.verify_digest(entries_[i].digest, entries_[i].sig)) {
      res.rejected.push_back(i);
    }
  };

  if (n < kMinBatch) {
    for (std::size_t i = 0; i < n; ++i) settle_serial(i);
    entries_.clear();
    return res;
  }

  // Coefficients are bound to the whole batch: same entries -> same z_i
  // (deterministic replay), different entries -> unrelated z_i.
  std::vector<Bytes> transcript;
  transcript.reserve(n);
  for (const Entry& e : entries_) {
    Bytes t(e.digest.begin(), e.digest.end());
    Bytes k = e.key.encode();
    Bytes s = e.sig.encode();
    t.insert(t.end(), k.begin(), k.end());
    t.insert(t.end(), s.begin(), s.end());
    transcript.push_back(std::move(t));
  }
  std::vector<U256> zs = derive_coefficients(seed_, transcript, n);

  // Admission: structural checks and the even-R lift.  Anything that
  // cannot join the linear combination settles serially right away (the
  // serial verdict is the ground truth the batch must reproduce anyway).
  std::vector<Prepared> prep(n);
  std::vector<char> active(n, 0);
  std::vector<U256> winv(n, U256::zero());
  for (std::size_t i = 0; i < n; ++i) {
    const Entry& e = entries_[i];
    if (!sc_is_valid(e.sig.r) || !sc_is_valid(e.sig.s) ||
        e.key.point().infinity) {
      settle_serial(i);
      continue;
    }
    winv[i] = e.sig.s;
    active[i] = 1;
  }
  sc_inv_batch(winv.data(), n);  // zeros (inactive slots) stay zero
  std::vector<std::size_t> idx;
  idx.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!active[i]) continue;
    const Entry& e = entries_[i];
    std::optional<AffinePoint> r_pt = lift_even_r(e.sig.r);
    if (!r_pt) {
      settle_serial(i);
      continue;
    }
    const U256 h = sc_reduce(
        U256::from_bytes_be(BytesView(e.digest.data(), e.digest.size())));
    const U256 zw = sc_mul(zs[i], winv[i]);
    Prepared& p = prep[i];
    p.a = sc_mul(zw, h);
    p.c = sc_mul(zw, e.sig.r);
    p.z = zs[i];
    p.q = e.key.point();
    p.rn = point_neg(*r_pt);
    idx.push_back(i);
  }

  // One multi-scalar check over a set of admitted entries.  Duplicate
  // signer keys — the common case for a sync flood, which carries one
  // writer key — coalesce into a single term, so a same-key batch costs
  // 2 digit streams for Q instead of 2k.
  auto check = [&](const std::size_t* ids, std::size_t count) {
    std::vector<MulTerm> terms;
    terms.reserve(1 + 2 * count);
    U256 a_sum = U256::zero();
    std::vector<std::size_t> key_terms;  // indices into `terms`
    for (std::size_t j = 0; j < count; ++j) {
      const Prepared& p = prep[ids[j]];
      a_sum = sc_add(a_sum, p.a);
      bool merged = false;
      for (std::size_t t : key_terms) {
        if (terms[t].p == p.q) {
          terms[t].k = sc_add(terms[t].k, p.c);
          merged = true;
          break;
        }
      }
      if (!merged) {
        key_terms.push_back(terms.size());
        terms.push_back(MulTerm{p.c, p.q});
      }
      terms.push_back(MulTerm{p.z, p.rn});
    }
    terms.push_back(MulTerm{a_sum, secp_g()});
    return point_mul_multi(terms.data(), terms.size()).infinity;
  };

  // Bisection: honest ranges settle with one check; a failing range
  // splits until the forged entries are isolated (ranges below kMinBatch
  // settle serially, which also pins the exact verdict per entry).
  auto settle_range = [&](auto&& self, const std::size_t* ids,
                          std::size_t count) -> void {
    if (count == 0) return;
    if (count < kMinBatch) {
      for (std::size_t j = 0; j < count; ++j) settle_serial(ids[j]);
      return;
    }
    ++res.checks;
    if (check(ids, count)) return;
    ++res.bisections;
    const std::size_t half = count / 2;
    self(self, ids, half);
    self(self, ids + half, count - half);
  };
  settle_range(settle_range, idx.data(), idx.size());

  std::sort(res.rejected.begin(), res.rejected.end());
  entries_.clear();
  return res;
}

}  // namespace gdp::crypto
