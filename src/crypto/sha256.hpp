// SHA-256 (FIPS 180-4).
//
// §V of the paper: "unless otherwise specified, 'hash' refers to a SHA256
// hash function".  Capsule names, record hashes, key fingerprints and the
// HMAC construction all build on this implementation.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"
#include "common/name.hpp"

namespace gdp::crypto {

using Digest = std::array<std::uint8_t, 32>;

/// Incremental hasher.
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  Sha256& update(BytesView data);
  /// Finalizes and returns the digest; the hasher must be reset() before
  /// further use.
  Digest finish();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// One-shot convenience.
Digest sha256(BytesView data);

/// Digests interoperate with the flat name space: a Name *is* a SHA-256.
inline Name digest_to_name(const Digest& d) {
  return Name(d);
}
inline Bytes digest_to_bytes(const Digest& d) {
  return Bytes(d.begin(), d.end());
}

}  // namespace gdp::crypto
