// HMAC-SHA256 (RFC 2104) and an HKDF-style key-derivation helper.
//
// Steady-state secure acknowledgments between clients and
// DataCapsule-servers use HMAC rather than signatures (§V "Secure
// Responses"), giving per-message byte overhead "roughly similar to TLS".
#pragma once

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"

namespace gdp::crypto {

/// HMAC-SHA256 of `data` under `key`.
Digest hmac_sha256(BytesView key, BytesView data);

/// Verifies an HMAC tag in constant time.
bool hmac_verify(BytesView key, BytesView data, BytesView tag);

/// Simple HKDF-like expansion: derives `n` bytes from input keying
/// material and a context label.
Bytes derive_key(BytesView ikm, std::string_view label, std::size_t n);

}  // namespace gdp::crypto
