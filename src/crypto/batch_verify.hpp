// Batch ECDSA verification by random linear combination.
//
// Anti-entropy floods and catalog re-advertisements deliver many
// individually-signed records at once; verifying each one costs a full
// double-scalar multiplication.  A BatchVerifier instead accumulates
// (digest, pubkey, signature) triples and checks all k of them with one
// multi-scalar multiplication:
//
//   sum(z_i * s_i^-1 * h_i) * G + sum(z_i * s_i^-1 * r_i * Q_i)
//                                         - sum(z_i * R_i)  ==  O
//
// where the z_i are independent 128-bit coefficients drawn from a
// ChaCha20 stream keyed by SHA-256(seed || every queued triple).  Keying
// the stream on the batch content makes the coefficients deterministic
// for identical inputs (simulation runs stay byte-reproducible) while
// still unpredictable to a forger, who must commit to the signatures
// before the coefficients exist (Fiat–Shamir style): any invalid entry
// survives a batch check with probability ~2^-128.
//
// R_i is reconstructed from r_i by lifting the even-y curve point at
// x = r_i; honest signers emit even-R normalized signatures (see
// PrivateKey::sign_digest), so the lift recovers exactly the signer's
// nonce point.  Signatures that fail the lift (odd-R malleated forms,
// foreign signers, the astronomically rare r = R.x - n case) simply fall
// back to authoritative single verification — the batch verdict for
// every entry always equals what PublicKey::verify_digest would return.
//
// On batch failure the verifier bisects: each failing half is re-checked,
// and ranges below kMinBatch are settled serially, so forged indices are
// isolated exactly while honest entries in the same flood still verify
// at batch speed.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/keys.hpp"

namespace gdp::crypto {

class BatchVerifier {
 public:
  /// Below this many entries the shared-doubling-chain saving cannot pay
  /// for the per-entry lift and table work; verify_all() goes serial.
  static constexpr std::size_t kMinBatch = 4;

  /// `seed` feeds the coefficient stream alongside the batch content;
  /// pass a simulation-derived value so runs stay reproducible.
  explicit BatchVerifier(std::uint64_t seed = 0) : seed_(seed) {}

  /// Queues one triple; returns its index in the batch.
  std::size_t add(const Digest& digest, const PublicKey& key,
                  const Signature& sig);

  void reserve(std::size_t n) { entries_.reserve(n); }
  std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

  struct Result {
    /// Indices whose signatures failed, ascending.  Every index not
    /// listed here verified successfully.
    std::vector<std::size_t> rejected;
    /// Multi-scalar batch checks evaluated (1 == clean accept).
    std::size_t checks = 0;
    /// Failed checks that split into two halves.
    std::size_t bisections = 0;
    /// Entries settled by single verify_digest (small batches, bisection
    /// leaves, R-lift fallbacks, malformed signatures).
    std::size_t serial_fallbacks = 0;

    bool all_ok() const { return rejected.empty(); }
  };

  /// Verifies every queued entry and clears the batch.  The verdict per
  /// entry is exactly PublicKey::verify_digest's; only the cost differs.
  Result verify_all();

 private:
  struct Entry {
    Digest digest;
    PublicKey key;
    Signature sig;
  };

  std::uint64_t seed_;
  std::vector<Entry> entries_;
};

}  // namespace gdp::crypto
