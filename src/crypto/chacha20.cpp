#include "crypto/chacha20.hpp"

#include <cstring>

#include "crypto/hmac.hpp"

namespace gdp::crypto {

namespace {

inline std::uint32_t rotl(std::uint32_t v, int n) {
  return (v << n) | (v >> (32 - n));
}

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) {
  a += b; d ^= a; d = rotl(d, 16);
  c += d; b ^= c; b = rotl(b, 12);
  a += b; d ^= a; d = rotl(d, 8);
  c += d; b ^= c; b = rotl(b, 7);
}

inline std::uint32_t load32(const std::uint8_t* p) {
  return std::uint32_t(p[0]) | (std::uint32_t(p[1]) << 8) |
         (std::uint32_t(p[2]) << 16) | (std::uint32_t(p[3]) << 24);
}

void chacha20_block(const SymmetricKey& key, const Nonce96& nonce,
                    std::uint32_t counter, std::uint8_t out[64]) {
  std::uint32_t state[16];
  state[0] = 0x61707865;
  state[1] = 0x3320646e;
  state[2] = 0x79622d32;
  state[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state[4 + i] = load32(key.data() + i * 4);
  state[12] = counter;
  for (int i = 0; i < 3; ++i) state[13 + i] = load32(nonce.data() + i * 4);

  std::uint32_t x[16];
  std::memcpy(x, state, sizeof(x));
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    std::uint32_t v = x[i] + state[i];
    out[i * 4] = static_cast<std::uint8_t>(v);
    out[i * 4 + 1] = static_cast<std::uint8_t>(v >> 8);
    out[i * 4 + 2] = static_cast<std::uint8_t>(v >> 16);
    out[i * 4 + 3] = static_cast<std::uint8_t>(v >> 24);
  }
}

}  // namespace

Bytes chacha20_xor(const SymmetricKey& key, const Nonce96& nonce,
                   std::uint32_t initial_counter, BytesView data) {
  Bytes out(data.begin(), data.end());
  std::uint8_t keystream[64];
  std::uint32_t counter = initial_counter;
  for (std::size_t off = 0; off < out.size(); off += 64, ++counter) {
    chacha20_block(key, nonce, counter, keystream);
    std::size_t n = std::min<std::size_t>(64, out.size() - off);
    for (std::size_t i = 0; i < n; ++i) out[off + i] ^= keystream[i];
  }
  return out;
}

namespace {
Digest box_tag(const SymmetricKey& key, BytesView nonce_and_ct, BytesView aad) {
  // MAC key derived from the encryption key so a single 32-byte secret
  // suffices for callers.
  Bytes mac_key = derive_key(BytesView(key.data(), key.size()), "gdp.secretbox.mac", 32);
  Bytes msg = concat(aad, nonce_and_ct);
  return hmac_sha256(mac_key, msg);
}
}  // namespace

Bytes secretbox_seal(const SymmetricKey& key, const Nonce96& nonce,
                     BytesView plaintext, BytesView aad) {
  Bytes out(nonce.begin(), nonce.end());
  Bytes ct = chacha20_xor(key, nonce, 1, plaintext);
  append(out, ct);
  Digest tag = box_tag(key, out, aad);
  append(out, BytesView(tag.data(), tag.size()));
  return out;
}

std::optional<Bytes> secretbox_open(const SymmetricKey& key, BytesView boxed,
                                    BytesView aad) {
  if (boxed.size() < 12 + 32) return std::nullopt;
  BytesView body = boxed.subspan(0, boxed.size() - 32);
  BytesView tag = boxed.subspan(boxed.size() - 32);
  Digest expected = box_tag(key, body, aad);
  if (!constant_time_equal(BytesView(expected.data(), expected.size()), tag)) {
    return std::nullopt;
  }
  Nonce96 nonce;
  std::memcpy(nonce.data(), boxed.data(), 12);
  return chacha20_xor(key, nonce, 1, body.subspan(12));
}

}  // namespace gdp::crypto
