#include "telemetry/trace.hpp"

#include <cinttypes>
#include <cstdio>

namespace gdp::telemetry {

void TraceSink::record(std::uint64_t trace_id, const Name& node,
                       std::string_view event, std::string detail) {
  if (!enabled_) return;
  SpanEvent span{trace_id, clock_ != nullptr ? clock_->now() : TimePoint{}, node,
                 event, std::move(detail)};
  ++recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
    return;
  }
  ring_[next_] = std::move(span);
  next_ = (next_ + 1) % capacity_;
}

std::vector<SpanEvent> TraceSink::events() const {
  std::vector<SpanEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
    return out;
  }
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % capacity_]);
  }
  return out;
}

std::vector<SpanEvent> TraceSink::events_for(std::uint64_t trace_id) const {
  std::vector<SpanEvent> out;
  for (const SpanEvent& e : events()) {
    if (e.trace_id == trace_id) out.push_back(e);
  }
  return out;
}

void TraceSink::clear() {
  ring_.clear();
  next_ = 0;
  recorded_ = 0;
}

std::string TraceSink::to_json(int indent) const {
  const std::string pad1(static_cast<std::size_t>(indent), ' ');
  const std::string pad2(static_cast<std::size_t>(indent) * 2, ' ');
  const std::string pad3(static_cast<std::size_t>(indent) * 3, ' ');
  const std::vector<SpanEvent> all = events();

  // Group by trace id, ordered by first appearance in the buffer.
  std::vector<std::uint64_t> order;
  for (const SpanEvent& e : all) {
    bool seen = false;
    for (std::uint64_t id : order) {
      if (id == e.trace_id) {
        seen = true;
        break;
      }
    }
    if (!seen) order.push_back(e.trace_id);
  }

  char buf[64];
  std::string out = "{\n" + pad1 + "\"recorded\": ";
  std::snprintf(buf, sizeof buf, "%" PRIu64, recorded());
  out += buf;
  out += ",\n" + pad1 + "\"dropped_by_wraparound\": ";
  std::snprintf(buf, sizeof buf, "%" PRIu64, dropped_by_wraparound());
  out += buf;
  out += ",\n" + pad1 + "\"traces\": [";
  bool first_trace = true;
  for (std::uint64_t id : order) {
    out += first_trace ? "\n" : ",\n";
    first_trace = false;
    out += pad2 + "{\"trace_id\": ";
    std::snprintf(buf, sizeof buf, "%" PRIu64, id);
    out += buf;
    out += ", \"spans\": [";
    bool first_span = true;
    for (const SpanEvent& e : all) {
      if (e.trace_id != id) continue;
      out += first_span ? "\n" : ",\n";
      first_span = false;
      out += pad3 + "{\"t_ns\": ";
      std::snprintf(buf, sizeof buf, "%" PRId64,
                    static_cast<std::int64_t>(e.at.count()));
      out += buf;
      out += ", \"node\": \"" + e.node.short_hex() + "\", \"event\": \"";
      out += e.event;
      out += "\"";
      if (!e.detail.empty()) out += ", \"detail\": \"" + e.detail + "\"";
      out += "}";
    }
    out += first_span ? "]}" : "\n" + pad2 + "]}";
  }
  out += first_trace ? "]\n" : "\n" + pad1 + "]\n";
  out += "}\n";
  return out;
}

}  // namespace gdp::telemetry
