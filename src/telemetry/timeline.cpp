#include "telemetry/timeline.hpp"

#include <cinttypes>
#include <cstdio>

namespace gdp::telemetry {

void StatsTimeline::append(const std::string& series, std::int64_t t_ns,
                           std::uint64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  series_[series].push_back(Point{t_ns, value});
  ++samples_;
}

std::size_t StatsTimeline::series_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_.size();
}

std::size_t StatsTimeline::sample_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_;
}

std::vector<StatsTimeline::Point> StatsTimeline::series(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(name);
  return it == series_.end() ? std::vector<Point>{} : it->second;
}

std::vector<std::string> StatsTimeline::series_names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, _] : series_) out.push_back(name);
  return out;
}

std::string StatsTimeline::to_json(int indent) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string pad1(static_cast<std::size_t>(indent), ' ');
  const std::string pad2(static_cast<std::size_t>(indent) * 2, ' ');
  std::string out = "{\n" + pad1 + "\"series\": {";
  bool first = true;
  char buf[96];
  for (const auto& [name, points] : series_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += pad2 + "\"" + name + "\": [";
    for (std::size_t i = 0; i < points.size(); ++i) {
      std::snprintf(buf, sizeof buf, "{\"t_ns\": %" PRId64 ", \"v\": %" PRIu64 "}",
                    points[i].t_ns, points[i].value);
      if (i != 0) out += ", ";
      out += buf;
    }
    out += "]";
  }
  out += first ? "},\n" : "\n" + pad1 + "},\n";
  std::snprintf(buf, sizeof buf, "\"samples\": %zu\n", samples_);
  out += pad1 + buf + "}\n";
  return out;
}

TelemetryPoller::TelemetryPoller(PollFn poll, std::chrono::milliseconds interval)
    : poll_(std::move(poll)),
      interval_(interval),
      epoch_(std::chrono::steady_clock::now()) {}

TelemetryPoller::~TelemetryPoller() { stop(); }

void TelemetryPoller::start() {
  if (running_) return;
  stop_requested_ = false;
  running_ = true;
  thread_ = std::thread([this] { loop(); });
}

void TelemetryPoller::stop() {
  if (!running_) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  running_ = false;
}

void TelemetryPoller::loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    lock.unlock();
    poll_(now_ns());
    polls_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
    if (stop_requested_) return;
    cv_.wait_for(lock, interval_, [this] { return stop_requested_; });
    if (stop_requested_) {
      // One final sample so the timeline always covers the full run.
      lock.unlock();
      poll_(now_ns());
      polls_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
}

}  // namespace gdp::telemetry
