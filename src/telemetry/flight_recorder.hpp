// Always-on flight recorder for the threaded data plane.
//
// Each shard worker (plus the single ingress producer) owns one private
// FlightRing: a fixed-size, lock-free, single-writer ring of wall-clock
// timestamped events on the forwarding fast path — submit, ring dequeue,
// fib lookup, forward, cross-shard handoff, drop, stall.  Recording is a
// few relaxed atomic stores behind a counter-based sampling gate, so the
// recorder can stay enabled in production at well under 5% overhead; a
// sampled PDU records its *whole* event sequence, so the exported spans
// stay correlated by trace id.
//
// Concurrency contract: exactly one thread records into any given track
// (the data plane gives every shard worker its own track, and the submit
// path — single-producer by the ShardedDataPlane API contract — the extra
// "ingress" track).  Any other thread may snapshot() concurrently: slots
// are seqlock-versioned atomics, so a reader either observes a consistent
// event or discards the slot — never a data race, never a torn export.
//
// Determinism discipline: timestamps are steady_clock (wall time) and are
// therefore *segregated* from the deterministic stats surface.  Only event
// COUNTS (seen / sampled / recorded / overwritten) ever reach stats_json;
// timestamps appear exclusively in the Perfetto / timeline exports, which
// are allowed to differ across reruns.  Counter-based sampling with a
// seeded per-track phase makes the sampled-event *sequence* itself a
// deterministic function of the input sequence.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "telemetry/metrics.hpp"

namespace gdp::telemetry {

enum class FlightEventType : std::uint8_t {
  kSubmit = 0,   ///< producer enqueued a PDU onto an ingress ring (arg: shard)
  kDequeue,      ///< worker popped a PDU (arg: ingress occupancy at drain start)
  kFibLookup,    ///< snapshot-FIB lookup (arg: 1 hit, 0 miss)
  kForward,      ///< forwarding decision span (arg: duration in ns)
  kHandoffOut,   ///< cross-shard handoff enqueued (arg: owner shard)
  kHandoffIn,    ///< cross-shard handoff consumed (arg: producer shard)
  kDrop,         ///< terminal: PDU discarded (arg: FlightDropReason)
  kStall,        ///< ring backpressure: push refused (arg: target shard)
  kCount
};

/// Stable short names for exports (index by FlightEventType).
const char* flight_event_name(FlightEventType t);

/// Terminal drop reasons carried in kDrop's arg (mirrors the dp.drop.*
/// counter family — every discard path owns exactly one code).
enum class FlightDropReason : std::uint8_t {
  kTtl = 0,
  kNoRoute,
  kExpired,
  kHandoffShutdown,
  kShutdownDrain,
  kShedBench,  ///< bench traffic shed at ingress watermark (overload)
  kCount
};

const char* flight_drop_reason_name(FlightDropReason r);

/// One decoded event out of a snapshot.
struct FlightEvent {
  std::int64_t t_ns = 0;  ///< steady_clock ns since recorder epoch
  std::uint64_t trace_id = 0;
  FlightEventType type = FlightEventType::kSubmit;
  std::uint64_t arg = 0;  ///< duration / occupancy / shard / reason
};

/// Fixed-size single-writer event ring with seqlock slots.  The writer
/// overwrites the oldest event when full (flight-recorder semantics: the
/// recent past always survives); concurrent readers validate per-slot
/// sequence numbers and drop anything caught mid-write.
class FlightRing {
 public:
  explicit FlightRing(std::size_t capacity);

  FlightRing(const FlightRing&) = delete;
  FlightRing& operator=(const FlightRing&) = delete;

  /// Writer side (one thread).  arg is truncated to 48 bits.
  void record(std::int64_t t_ns, FlightEventType type, std::uint64_t trace_id,
              std::uint64_t arg);

  std::size_t capacity() const { return mask_ + 1; }
  /// Total record() calls, including overwritten slots.
  std::uint64_t recorded() const {
    return recorded_.load(std::memory_order_acquire);
  }
  /// Events whose slot has been overwritten by wraparound.
  std::uint64_t overwritten() const {
    const std::uint64_t n = recorded();
    return n > capacity() ? n - capacity() : 0;
  }

  /// Reader side (any thread, concurrent with record()).  Returns the
  /// surviving events oldest-first; slots being overwritten mid-read are
  /// skipped, never torn.
  std::vector<FlightEvent> snapshot() const;

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};  ///< odd while a write is in flight
    std::atomic<std::uint64_t> t{0};
    std::atomic<std::uint64_t> trace{0};
    std::atomic<std::uint64_t> packed{0};  ///< type | arg<<16
  };

  std::unique_ptr<Slot[]> slots_;
  std::size_t mask_ = 0;
  std::atomic<std::uint64_t> recorded_{0};  ///< writer-owned, readers poll
};

/// The per-data-plane recorder: one FlightRing per track plus the sampling
/// gate and per-track accounting.  Track indices are assigned by the owner
/// (the sharded data plane uses [0, num_shards) for the shard workers and
/// num_shards for the ingress producer).
class FlightRecorder {
 public:
  struct Config {
    bool enabled = true;
    /// Events retained per track (rounded up to a power of two).
    std::size_t ring_capacity = 8192;
    /// Record every Nth PDU's event sequence; 1 = record everything.
    /// 64 keeps the measured always-on overhead well under the 5% budget
    /// while a 25k-origin bench point still lands thousands of sampled
    /// sequences per shard.
    std::uint32_t sample_period = 64;
    /// Seeds the per-track sampling phase so tracks don't sample in
    /// lockstep; identical seeds give identical sampled sequences.
    std::uint64_t seed = 0;
  };

  FlightRecorder(std::size_t tracks, Config cfg);

  bool enabled() const { return cfg_.enabled; }
  std::size_t tracks() const { return tracks_.size(); }
  const Config& config() const { return cfg_; }

  /// Sampling gate, called once per PDU per track: returns true when this
  /// PDU's event sequence should be recorded.  Deterministic for a
  /// deterministic per-track input sequence (pure countdown, no clocks).
  /// The hot path is one relaxed load + store: the seen count is derived
  /// algebraically from the countdown (see seen()) instead of maintained
  /// as a second counter — this gate runs once per PDU per hop, so every
  /// saved instruction shows up in the recorder-overhead budget.
  bool tick(std::size_t track) {
    if (!cfg_.enabled) return false;
    Track& t = *tracks_[track];
    const std::uint32_t b = t.budget.load(std::memory_order_relaxed) - 1;
    t.budget.store(b, std::memory_order_relaxed);
    if (b != 0) return false;
    t.budget.store(cfg_.sample_period, std::memory_order_relaxed);
    t.sampled.inc();
    return true;
  }

  /// Wall-clock ns since the recorder's construction epoch.
  std::int64_t now_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Records one event stamped now (sampled callers: gate with tick()).
  void record(std::size_t track, FlightEventType type, std::uint64_t trace_id,
              std::uint64_t arg) {
    record_at(track, now_ns(), type, trace_id, arg);
  }
  /// Records with an explicit timestamp (span starts captured earlier).
  void record_at(std::size_t track, std::int64_t t_ns, FlightEventType type,
                 std::uint64_t trace_id, std::uint64_t arg) {
    tracks_[track]->ring.record(t_ns, type, trace_id, arg);
  }
  /// Bypasses sampling — terminal events (drops) are always recorded so
  /// every discarded PDU leaves a span, matching the drop-audit guarantee.
  void record_always(std::size_t track, FlightEventType type,
                     std::uint64_t trace_id, std::uint64_t arg) {
    if (!cfg_.enabled) return;
    record(track, type, trace_id, arg);
  }

  const FlightRing& ring(std::size_t track) const {
    return tracks_[track]->ring;
  }
  /// PDUs offered to the gate while enabled.  Derived, not maintained:
  /// ticks = phase - budget + sampled * period (the countdown loses one
  /// per tick and regains `period` per sample), so the fast path never
  /// touches a second counter.
  std::uint64_t seen(std::size_t track) const {
    if (!cfg_.enabled) return 0;
    const Track& t = *tracks_[track];
    // Signed intermediate: right after a sample the refilled budget
    // exceeds the phase, so the uint32 difference alone would wrap.
    const std::int64_t ticks =
        static_cast<std::int64_t>(t.phase) -
        static_cast<std::int64_t>(t.budget.load(std::memory_order_relaxed)) +
        static_cast<std::int64_t>(t.sampled.value() * cfg_.sample_period);
    return static_cast<std::uint64_t>(ticks);
  }
  std::uint64_t sampled(std::size_t track) const {
    return tracks_[track]->sampled.value();
  }

  /// Publishes the deterministic (count-only) slice into `m`:
  ///   rec.events.seen / rec.events.sampled / rec.events.recorded /
  ///   rec.ring.overwritten — summed over tracks.  No timestamps.
  void publish_stats(MetricsRegistry& m, const std::string& prefix) const;

 private:
  struct Track {
    explicit Track(std::size_t cap, std::uint32_t budget0)
        : ring(cap), budget(budget0), phase(budget0) {}
    FlightRing ring;
    /// Writer-owned countdown to the next sample; atomic (plain relaxed
    /// load/store, no RMW) so seen() can poll it from another thread.
    std::atomic<std::uint32_t> budget;
    const std::uint32_t phase;  ///< initial countdown, for seen()
    Counter sampled;            ///< PDUs whose sequence was recorded
  };

  Config cfg_;
  std::vector<std::unique_ptr<Track>> tracks_;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace gdp::telemetry
