// Hop-by-hop PDU tracing over simulated time.
//
// Every PDU entering the fabric is assigned a trace id (carried in the PDU
// header, preserved across forwarding hops); routers, endpoints and
// servers record span events — recv, fib_lookup, verify, forward, deliver,
// drop{reason} — into a fixed-capacity ring buffer.  Timestamps come from
// the registered Clock (the discrete-event simulator's clock, never wall
// time), so a trace dump is deterministic: two identical sim runs produce
// byte-identical hop timelines, and a diff of two dumps is a diff of
// *behaviour*, not of scheduling noise.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.hpp"
#include "common/name.hpp"

namespace gdp::telemetry {

/// One span event.  `event` must be a string literal (or otherwise outlive
/// the sink) — the hot path stores the pointer, no allocation.
struct SpanEvent {
  std::uint64_t trace_id = 0;
  TimePoint at{};
  Name node;
  std::string_view event;
  std::string detail;  ///< drop reason, fib hit/miss, message kind, ...
};

class TraceSink {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit TraceSink(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// The clock events are stamped with; unset (nullptr) stamps zero.
  void set_clock(const Clock* clock) { clock_ = clock; }
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  void record(std::uint64_t trace_id, const Name& node, std::string_view event,
              std::string detail = {});

  /// Events in arrival order (oldest surviving first after wraparound).
  std::vector<SpanEvent> events() const;
  /// Events for one trace id, in arrival order.
  std::vector<SpanEvent> events_for(std::uint64_t trace_id) const;

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return ring_.size(); }
  /// Total record() calls, including those whose slot has been overwritten.
  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t dropped_by_wraparound() const {
    return recorded_ - static_cast<std::uint64_t>(ring_.size());
  }
  void clear();

  /// Per-trace hop timelines:
  /// {"traces": [{"trace_id": N, "spans": [
  ///    {"t_ns": .., "node": "<short hex>", "event": "..", "detail": ".."},
  ///    ...]}, ...], "recorded": N, "dropped_by_wraparound": N}
  /// Traces ordered by first appearance; byte-stable for identical runs.
  std::string to_json(int indent = 2) const;

 private:
  const Clock* clock_ = nullptr;
  bool enabled_ = true;
  std::size_t capacity_;
  std::vector<SpanEvent> ring_;  ///< grows to capacity_, then circular
  std::size_t next_ = 0;         ///< overwrite position once full
  std::uint64_t recorded_ = 0;
};

}  // namespace gdp::telemetry
