#include "telemetry/metrics.hpp"

#include <bit>
#include <cinttypes>
#include <cstdio>

#include "common/buffer.hpp"

namespace gdp::telemetry {

void Histogram::record(std::uint64_t value) {
  ++buckets_[bucket_index(value)];
  ++count_;
  sum_ += value;
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
}

std::size_t Histogram::bucket_index(std::uint64_t value) {
  if (value < 4) return static_cast<std::size_t>(value);
  // value in [2^e, 2^(e+1)), e >= 2; the two bits below the leading one
  // select one of 4 sub-buckets.
  const int e = 63 - std::countl_zero(value);
  const std::uint64_t sub = (value >> (e - 2)) & 3;
  return 4 + static_cast<std::size_t>(e - 2) * 4 + static_cast<std::size_t>(sub);
}

std::uint64_t Histogram::bucket_upper_bound(std::size_t index) {
  if (index < 4) return index;
  const int e = 2 + static_cast<int>((index - 4) / 4);
  const std::uint64_t sub = (index - 4) % 4;
  const std::uint64_t width = 1ull << (e - 2);
  const std::uint64_t lower = (4 + sub) * width;
  return lower + width - 1;
}

void Histogram::merge(const Histogram& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.count_ != 0) {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
}

std::uint64_t Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-th sample (1-based, ceil), so q=1 is the last sample.
  std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(count_));
  if (rank < q * static_cast<double>(count_)) ++rank;  // ceil
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      const std::uint64_t ub = bucket_upper_bound(i);
      return ub > max_ ? max_ : ub;  // never report beyond the observed max
    }
  }
  return max_;
}

namespace {
void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out += buf;
}
void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}
}  // namespace

std::string MetricsRegistry::to_json(int indent) const {
  const std::string pad1(static_cast<std::size_t>(indent), ' ');
  const std::string pad2(static_cast<std::size_t>(indent) * 2, ' ');
  std::string out = "{\n" + pad1 + "\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += pad2 + "\"" + name + "\": ";
    append_u64(out, c.value());
  }
  out += first ? "},\n" : "\n" + pad1 + "},\n";
  out += pad1 + "\"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += pad2 + "\"" + name + "\": {\"count\": ";
    append_u64(out, h.count());
    out += ", \"sum\": ";
    append_u64(out, h.sum());
    out += ", \"mean\": ";
    append_double(out, h.mean());
    out += ", \"min\": ";
    append_u64(out, h.min());
    out += ", \"max\": ";
    append_u64(out, h.max());
    out += ", \"p50\": ";
    append_u64(out, h.p50());
    out += ", \"p95\": ";
    append_u64(out, h.p95());
    out += ", \"p99\": ";
    append_u64(out, h.p99());
    out += "}";
  }
  out += first ? "}\n" : "\n" + pad1 + "}\n";
  out += "}\n";
  return out;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) counters_[name].inc(c.value());
  for (const auto& [name, h] : other.histograms_) histograms_[name].merge(h);
}

MetricsRegistry MetricsRegistry::subset(const std::string& prefix) const {
  MetricsRegistry out;
  for (const auto& [name, c] : counters_) {
    if (name.starts_with(prefix)) out.counters_[name] = c;
  }
  for (const auto& [name, h] : histograms_) {
    if (name.starts_with(prefix)) out.histograms_[name] = h;
  }
  return out;
}

void publish_buffer_stats(MetricsRegistry& m) {
  const BufferStats::Snapshot s = BufferStats::snapshot();
  m.counter("buffer.pool.allocs").set(s.segment_allocs);
  m.counter("buffer.pool.reuses").set(s.segment_reuses);
  m.counter("buffer.pool.releases").set(s.segment_releases);
  m.counter("buffer.bytes_copied").set(s.bytes_copied);
  m.counter("buffer.arena.blocks").set(s.arena_blocks);
  m.counter("buffer.arena.bytes").set(s.arena_bytes);
}

}  // namespace gdp::telemetry
