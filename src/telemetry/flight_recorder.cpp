#include "telemetry/flight_recorder.hpp"

namespace gdp::telemetry {

namespace {

// splitmix64 finalizer: decorrelates per-track sampling phases.
std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

constexpr const char* kEventNames[] = {
    "submit",  "dequeue",     "fib_lookup", "forward",
    "handoff", "handoff_in",  "drop",       "stall",
};
static_assert(sizeof(kEventNames) / sizeof(kEventNames[0]) ==
                  static_cast<std::size_t>(FlightEventType::kCount),
              "kEventNames must cover every FlightEventType");

constexpr const char* kDropNames[] = {
    "ttl",            "no_route",       "expired",
    "handoff_shutdown", "shutdown_drain", "shed_bench",
};
static_assert(sizeof(kDropNames) / sizeof(kDropNames[0]) ==
                  static_cast<std::size_t>(FlightDropReason::kCount),
              "kDropNames must cover every FlightDropReason");

}  // namespace

const char* flight_event_name(FlightEventType t) {
  const auto i = static_cast<std::size_t>(t);
  return i < static_cast<std::size_t>(FlightEventType::kCount) ? kEventNames[i]
                                                               : "unknown";
}

const char* flight_drop_reason_name(FlightDropReason r) {
  const auto i = static_cast<std::size_t>(r);
  return i < static_cast<std::size_t>(FlightDropReason::kCount) ? kDropNames[i]
                                                                : "unknown";
}

FlightRing::FlightRing(std::size_t capacity) {
  std::size_t cap = 1;
  while (cap < capacity) cap <<= 1;
  mask_ = cap - 1;
  slots_ = std::make_unique<Slot[]>(cap);
}

void FlightRing::record(std::int64_t t_ns, FlightEventType type,
                        std::uint64_t trace_id, std::uint64_t arg) {
  const std::uint64_t n = recorded_.load(std::memory_order_relaxed);
  Slot& s = slots_[n & mask_];
  // Seqlock write: odd marks the slot in flight; the release fence orders
  // the odd store before the payload, the release store publishes it.
  const std::uint64_t seq = s.seq.load(std::memory_order_relaxed);
  s.seq.store(seq + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  s.t.store(static_cast<std::uint64_t>(t_ns), std::memory_order_relaxed);
  s.trace.store(trace_id, std::memory_order_relaxed);
  s.packed.store(static_cast<std::uint64_t>(type) | (arg << 16),
                 std::memory_order_relaxed);
  s.seq.store(seq + 2, std::memory_order_release);
  recorded_.store(n + 1, std::memory_order_release);
}

std::vector<FlightEvent> FlightRing::snapshot() const {
  const std::uint64_t end = recorded_.load(std::memory_order_acquire);
  const std::uint64_t cap = capacity();
  const std::uint64_t begin = end > cap ? end - cap : 0;
  std::vector<FlightEvent> out;
  out.reserve(static_cast<std::size_t>(end - begin));
  for (std::uint64_t i = begin; i < end; ++i) {
    const Slot& s = slots_[i & mask_];
    const std::uint64_t seq1 = s.seq.load(std::memory_order_acquire);
    if ((seq1 & 1) != 0) continue;  // mid-write, discard
    FlightEvent e;
    e.t_ns = static_cast<std::int64_t>(s.t.load(std::memory_order_relaxed));
    e.trace_id = s.trace.load(std::memory_order_relaxed);
    const std::uint64_t packed = s.packed.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.seq.load(std::memory_order_relaxed) != seq1) continue;  // torn
    // The writer may have lapped this slot while we were iterating; a
    // lapped slot's payload belongs to a newer event — keep it anyway
    // (it is a valid event), but only if it passed the seq check above.
    e.type = static_cast<FlightEventType>(packed & 0xFF);
    e.arg = packed >> 16;
    if (static_cast<std::size_t>(e.type) >=
        static_cast<std::size_t>(FlightEventType::kCount)) {
      continue;  // never-written slot read before the writer reached it
    }
    out.push_back(e);
  }
  return out;
}

FlightRecorder::FlightRecorder(std::size_t tracks, Config cfg)
    : cfg_(cfg), epoch_(std::chrono::steady_clock::now()) {
  if (cfg_.sample_period == 0) cfg_.sample_period = 1;
  if (cfg_.ring_capacity == 0) cfg_.ring_capacity = 1;
  tracks_.reserve(tracks);
  for (std::size_t i = 0; i < tracks; ++i) {
    // Seeded phase: track i records its first sample after `phase` PDUs,
    // so tracks with identical traffic don't sample the same positions.
    const std::uint32_t phase = static_cast<std::uint32_t>(
        mix(cfg_.seed ^ (i + 1)) % cfg_.sample_period);
    tracks_.push_back(
        std::make_unique<Track>(cfg_.ring_capacity, 1 + phase));
  }
}

void FlightRecorder::publish_stats(MetricsRegistry& m,
                                   const std::string& prefix) const {
  std::uint64_t seen_total = 0, sampled = 0, recorded = 0, overwritten = 0;
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    seen_total += seen(i);
    sampled += tracks_[i]->sampled.value();
    recorded += tracks_[i]->ring.recorded();
    overwritten += tracks_[i]->ring.overwritten();
  }
  m.counter(prefix + "rec.events.seen").set(seen_total);
  m.counter(prefix + "rec.events.sampled").set(sampled);
  m.counter(prefix + "rec.events.recorded").set(recorded);
  m.counter(prefix + "rec.ring.overwritten").set(overwritten);
}

}  // namespace gdp::telemetry
