#include "telemetry/perfetto.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>

namespace gdp::telemetry {

namespace {

// One flattened Trace Event, ready to serialize.  ts/dur are microseconds
// (the Trace Event format's unit); args are pre-rendered JSON key/values.
struct Emitted {
  std::size_t tid;
  double ts_us;
  double dur_us;  ///< < 0: instant event ("i"), >= 0: complete event ("X")
  std::string name;
  std::string args;
};

void append_event(std::string& out, const Emitted& e, bool& first) {
  char buf[256];
  if (!first) out += ",\n";
  first = false;
  if (e.dur_us >= 0.0) {
    std::snprintf(buf, sizeof buf,
                  "    {\"ph\": \"X\", \"pid\": 1, \"tid\": %zu, "
                  "\"ts\": %.3f, \"dur\": %.3f, \"name\": \"%s\"",
                  e.tid, e.ts_us, e.dur_us, e.name.c_str());
  } else {
    std::snprintf(buf, sizeof buf,
                  "    {\"ph\": \"i\", \"pid\": 1, \"tid\": %zu, "
                  "\"ts\": %.3f, \"s\": \"t\", \"name\": \"%s\"",
                  e.tid, e.ts_us, e.name.c_str());
  }
  out += buf;
  if (!e.args.empty()) {
    out += ", \"args\": {" + e.args + "}";
  }
  out += "}";
}

void append_thread_name(std::string& out, std::size_t tid,
                        const std::string& name, bool& first) {
  char buf[128];
  if (!first) out += ",\n";
  first = false;
  std::snprintf(buf, sizeof buf,
                "    {\"ph\": \"M\", \"pid\": 1, \"tid\": %zu, "
                "\"name\": \"thread_name\", \"args\": {\"name\": \"%s\"}}",
                tid, name.c_str());
  out += buf;
}

std::string trace_id_arg(std::uint64_t trace_id) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "\"trace_id\": \"0x%016" PRIx64 "\"",
                trace_id);
  return buf;
}

std::string header() {
  return "{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [\n";
}

std::string footer() { return "\n  ]\n}\n"; }

}  // namespace

std::string PerfettoExporter::from_recorder(
    const FlightRecorder& rec, const std::vector<std::string>& track_names) {
  std::string out = header();
  bool first = true;
  for (std::size_t track = 0; track < rec.tracks(); ++track) {
    const std::string name = track < track_names.size()
                                 ? track_names[track]
                                 : "track" + std::to_string(track);
    append_thread_name(out, track, name, first);

    std::vector<Emitted> events;
    for (const FlightEvent& e : rec.ring(track).snapshot()) {
      Emitted em;
      em.tid = track;
      em.name = flight_event_name(e.type);
      char extra[96];
      if (e.type == FlightEventType::kForward) {
        // The span covers the whole forwarding decision; arg is its
        // duration, and the recorded timestamp is the span start.
        em.ts_us = static_cast<double>(e.t_ns) / 1e3;
        em.dur_us = static_cast<double>(e.arg) / 1e3;
        em.args = trace_id_arg(e.trace_id);
      } else {
        em.ts_us = static_cast<double>(e.t_ns) / 1e3;
        em.dur_us = -1.0;
        em.args = trace_id_arg(e.trace_id);
        if (e.type == FlightEventType::kDrop) {
          std::snprintf(extra, sizeof extra, ", \"reason\": \"%s\"",
                        flight_drop_reason_name(
                            static_cast<FlightDropReason>(e.arg)));
        } else {
          std::snprintf(extra, sizeof extra, ", \"arg\": %" PRIu64, e.arg);
        }
        em.args += extra;
      }
      events.push_back(std::move(em));
    }
    // Monotone timestamps per track: sort by emitted ts (span starts may
    // precede the instants recorded before them).
    std::stable_sort(events.begin(), events.end(),
                     [](const Emitted& a, const Emitted& b) {
                       return a.ts_us < b.ts_us;
                     });
    for (const Emitted& e : events) append_event(out, e, first);
  }
  out += footer();
  return out;
}

std::string PerfettoExporter::from_trace(const TraceSink& sink) {
  const std::vector<SpanEvent> all = sink.events();
  // Node -> tid, ordered by first appearance (deterministic).
  std::map<std::string, std::size_t> tids;
  std::vector<std::string> node_names;
  for (const SpanEvent& e : all) {
    const std::string node = e.node.short_hex();
    if (tids.emplace(node, node_names.size()).second) {
      node_names.push_back(node);
    }
  }

  std::string out = header();
  bool first = true;
  for (std::size_t i = 0; i < node_names.size(); ++i) {
    append_thread_name(out, i, node_names[i], first);
  }
  // TraceSink events arrive in global time order, so each per-node
  // subsequence is already monotone.
  for (const SpanEvent& e : all) {
    Emitted em;
    em.tid = tids[e.node.short_hex()];
    em.ts_us = static_cast<double>(e.at.count()) / 1e3;
    em.dur_us = -1.0;
    em.name = std::string(e.event);
    em.args = trace_id_arg(e.trace_id);
    if (!e.detail.empty()) {
      em.args += ", \"detail\": \"" + e.detail + "\"";
    }
    append_event(out, em, first);
  }
  out += footer();
  return out;
}

}  // namespace gdp::telemetry
