// Fabric-wide metrics registry.
//
// Every component on the data path (links, routers, GLookupServices,
// DataCapsule-servers, stores, clients) registers named counters and
// histograms here instead of keeping ad-hoc private tallies.  Handles are
// resolved once at component construction — the hot path touches a single
// integer — and the whole registry serializes to JSON in one call, so any
// harness, bench or test can dump a uniform stats snapshot.
//
// Names are hierarchical, dot-separated, lowest-cardinality label first:
//   router.<label>.fwd.pdus      glookup.<label>.verify_cache.hits
//   net.pdus.delivered           store.<label>.append.bytes
// Durations carry a `_ns` suffix, sizes a `_bytes`/`.bytes` suffix.
//
// Everything here is deterministic: histograms use fixed log-scale buckets
// (no sampling, no clocks), and to_json() iterates registries in name
// order, so two identical simulation runs serialize byte-identically.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

namespace gdp::telemetry {

/// Monotonic event counter.  `set()` exists for sampled gauges (FIB size,
/// cache occupancy) published into the registry at snapshot time.
///
/// Single-writer discipline: exactly one thread increments any given
/// counter (per-shard registries give each worker its own instruments),
/// so inc() is a plain load+store — no atomic RMW on the hot path — while
/// the atomic slot lets any other thread value()-poll without a data race
/// (threaded data-plane tests and progress monitors do).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter& o) : value_(o.value()) {}
  Counter& operator=(const Counter& o) {
    value_.store(o.value(), std::memory_order_relaxed);
    return *this;
  }

  void inc(std::uint64_t n = 1) {
    value_.store(value_.load(std::memory_order_relaxed) + n,
                 std::memory_order_relaxed);
  }
  void set(std::uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Fixed-bucket log-scale histogram for latencies (ns) and sizes (bytes).
//
// Buckets: values 0..3 are exact; beyond that each power of two splits
// into 4 sub-buckets (HDR-style), so quantiles carry at most ~12.5%
// relative error while recording stays branch-light and allocation-free.
// Quantiles report the upper bound of the containing bucket, clamped to
// the exact observed max — deterministic for identical inputs.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 252;

  void record(std::uint64_t value);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  /// Folds `other` into this histogram bucket-wise: counts, sums and
  /// min/max combine exactly; quantiles of the merged histogram are what
  /// they would have been had every sample been recorded here.  Used to
  /// aggregate per-shard registries into one fabric view.
  void merge(const Histogram& other);

  /// q in [0,1]; returns 0 on an empty histogram.
  std::uint64_t quantile(double q) const;
  std::uint64_t p50() const { return quantile(0.50); }
  std::uint64_t p95() const { return quantile(0.95); }
  std::uint64_t p99() const { return quantile(0.99); }

  static std::size_t bucket_index(std::uint64_t value);
  static std::uint64_t bucket_upper_bound(std::size_t index);

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ull;
  std::uint64_t max_ = 0;
};

/// Name -> instrument registry.  Re-requesting a name returns the same
/// instrument (components constructed at different times share series);
/// a counter and a histogram may share a name without colliding — they
/// serialize into separate JSON sections.  References stay valid for the
/// registry's lifetime (node-based map).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  std::size_t counter_count() const { return counters_.size(); }
  std::size_t histogram_count() const { return histograms_.size(); }

  /// Adds every instrument of `other` into this registry: counters with
  /// the same name sum, histograms merge bucket-wise, unseen names are
  /// created.  Shard registries merged in any order produce identical
  /// totals, and to_json() of the merged registry is byte-identical
  /// across reruns (sorted map iteration).
  void merge_from(const MetricsRegistry& other);

  /// Copies every instrument whose name starts with `prefix` into a new
  /// registry — scopes a component's stats dump (e.g. `router.r1.`) out
  /// of the fabric-wide registry without disturbing it.
  MetricsRegistry subset(const std::string& prefix) const;

  /// {"counters": {name: value, ...},
  ///  "histograms": {name: {count,sum,mean,min,max,p50,p95,p99}, ...}}
  /// Keys in lexicographic order; byte-stable for identical contents.
  std::string to_json(int indent = 2) const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Histogram> histograms_;
};

/// Publishes the process-wide buffer-pool / arena accounting (see
/// common/buffer.hpp) into `m` as `buffer.*` gauges:
///   buffer.pool.allocs        fresh heap segments
///   buffer.pool.reuses        freelist hits (zero-malloc acquires)
///   buffer.pool.releases      segments whose last reference dropped
///   buffer.bytes_copied       instrumented memcpy volume (serialize,
///                             clone, materialize — never the fast path)
///   buffer.arena.blocks / buffer.arena.bytes
/// Call before serializing stats; `--check` gates allocation regressions
/// on these the same way ablation_crypto --check gates crypto.
void publish_buffer_stats(MetricsRegistry& m);

}  // namespace gdp::telemetry
