// Perfetto / chrome://tracing export.
//
// Serializes recorded telemetry into the Chrome Trace Event JSON format
// (the "traceEvents" array), which ui.perfetto.dev and chrome://tracing
// open directly.  Two sources share one emitter:
//
//   * FlightRecorder rings (the threaded data plane): one named thread
//     track per shard worker plus the ingress producer, wall-clock
//     timestamps.  `forward` events carry their measured duration and
//     render as spans; everything else renders as instants.  Events are
//     sorted per track, so timestamps are monotone within every track.
//   * TraceSink (the simulated fabric): one named thread track per node,
//     simulated-time timestamps — a deterministic capture of a scenario's
//     hop-by-hop behaviour, diffable across reruns.
//
// Spans are correlated by the 8-byte PDU trace id, emitted into each
// event's args as a hex string so Perfetto's query/aggregation UI can
// group one PDU's journey across tracks.
#pragma once

#include <string>
#include <vector>

#include "telemetry/flight_recorder.hpp"
#include "telemetry/trace.hpp"

namespace gdp::telemetry {

class PerfettoExporter {
 public:
  /// Merges every track of `rec` into one trace; `track_names[i]` labels
  /// track i (missing entries fall back to "track<i>").
  static std::string from_recorder(const FlightRecorder& rec,
                                   const std::vector<std::string>& track_names);

  /// Exports a TraceSink's span events, one track per node (ordered by
  /// first appearance).  Deterministic for identical sinks.
  static std::string from_trace(const TraceSink& sink);
};

}  // namespace gdp::telemetry
