// Live queue-pressure time-series.
//
// A StatsTimeline holds named series of (timestamp, value) samples —
// SPSC ring occupancy and high-water marks, buffer-pool gauges, per-shard
// forward counters — appended either by a background TelemetryPoller
// thread (threaded data plane, wall-clock timestamps) or synchronously by
// the harness (simulated-time timestamps, deterministic).  The timeline is
// its own export artifact (GDP_TIMELINE_JSON), segregated from stats_json:
// wall-clock timelines may differ between reruns, stats_json never does.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace gdp::telemetry {

class StatsTimeline {
 public:
  struct Point {
    std::int64_t t_ns;
    std::uint64_t value;
  };

  /// Appends one sample to `series` (created on first use).  Thread-safe:
  /// the poller thread appends while the owner may concurrently read.
  void append(const std::string& series, std::int64_t t_ns,
              std::uint64_t value);

  std::size_t series_count() const;
  std::size_t sample_count() const;  ///< total points across all series
  std::vector<Point> series(const std::string& name) const;
  std::vector<std::string> series_names() const;

  /// {"series": {name: [{"t_ns": .., "v": ..}, ...], ...},
  ///  "samples": N}
  /// Series in name order; deterministic for identical contents (the
  /// contents themselves are deterministic only under simulated time).
  std::string to_json(int indent = 2) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::vector<Point>> series_;
  std::size_t samples_ = 0;
};

/// Background sampler: invokes `poll` every `interval` with a wall-clock
/// timestamp until stop().  The poll callback owns what gets sampled (the
/// data plane contributes ring occupancy, the pool its gauges); the poller
/// only provides the cadence and the thread.
class TelemetryPoller {
 public:
  /// t_ns: steady_clock ns since the poller's construction.
  using PollFn = std::function<void(std::int64_t t_ns)>;

  TelemetryPoller(PollFn poll, std::chrono::milliseconds interval);
  ~TelemetryPoller();

  TelemetryPoller(const TelemetryPoller&) = delete;
  TelemetryPoller& operator=(const TelemetryPoller&) = delete;

  /// Spawns the sampling thread (idempotent).
  void start();
  /// Takes a final sample, then joins the thread (idempotent).
  void stop();
  bool running() const { return running_; }

  /// One synchronous sample on the calling thread — the deterministic
  /// backends drive this instead of start() (no wall-clock cadence).
  void poll_once() {
    poll_(now_ns());
    polls_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t polls() const { return polls_.load(std::memory_order_relaxed); }

 private:
  std::int64_t now_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }
  void loop();

  PollFn poll_;
  std::chrono::milliseconds interval_;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<std::uint64_t> polls_{0};

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool running_ = false;
  std::thread thread_;
};

}  // namespace gdp::telemetry
