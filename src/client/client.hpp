// GDP client library (§VIII "Client applications primarily link against an
// event-driven library").
//
// The client owns the paper's end-to-end security obligations: it
// addresses conversations to capsule *names* (anycast picks a replica),
// verifies every response — signature + delegation-chain evidence on first
// contact, session HMAC at steady state — and validates all returned data
// against the capsule name as trust anchor.  "Clients use digital
// signatures and encryption as the fundamental tools to enable trust in
// data [rather] than in infrastructure."
//
// Operations are asynchronous (the library is event-driven); each returns
// an Op handle resolved from the network event loop.  await() drives the
// simulator until resolution — the idiom every example and benchmark uses.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "capsule/proof.hpp"
#include "capsule/writer.hpp"
#include "loadmgmt/retry_budget.hpp"
#include "router/endpoint.hpp"
#include "trust/delegation.hpp"
#include "trust/verify_cache.hpp"

namespace gdp::client {

template <typename T>
struct Op {
  bool done = false;
  /// Set when the op was resolved by its guard timeout firing (as opposed
  /// to a response, an error, or never resolving at all).  Lets await()
  /// report *which* condition ended the wait without widening Errc.
  bool timed_out = false;
  std::optional<Result<T>> outcome;
  /// Optional completion hook, fired exactly once at resolution.  Load
  /// benchmarks use it to record per-op latency without await()ing each
  /// op individually.
  std::function<void(const Result<T>&)> on_resolved;

  void resolve(Result<T> r) {
    if (done) return;
    done = true;
    outcome.emplace(std::move(r));
    if (on_resolved) on_resolved(*outcome);
  }
};
template <typename T>
using OpPtr = std::shared_ptr<Op<T>>;

/// How an await() ended.  The Errc of the outcome stays kUnavailable for
/// both failure shapes (existing callers key on that); the condition is
/// the refinement — the C API maps kOpTimeout to GDP_ERR_TIMEOUT.
enum class AwaitCondition {
  kResolved,     ///< op resolved with a response or error before any guard
  kOpTimeout,    ///< the client's per-op guard timer resolved the op
  kNetworkIdle,  ///< simulator queue drained with the op still pending
};

/// Runs the simulator until the op resolves (or the queue drains).  When
/// `condition` is non-null it reports which terminal condition fired.
template <typename T>
Result<T> await(net::Simulator& sim, const OpPtr<T>& op,
                AwaitCondition* condition = nullptr) {
  while (!op->done && !sim.idle()) sim.run_until(sim.now() + from_millis(10));
  if (!op->done) {
    if (condition != nullptr) *condition = AwaitCondition::kNetworkIdle;
    return make_error(Errc::kUnavailable,
                      "operation never resolved: network went idle with the "
                      "request still pending (no timeout fired)");
  }
  if (condition != nullptr) {
    *condition = op->timed_out ? AwaitCondition::kOpTimeout
                               : AwaitCondition::kResolved;
  }
  return std::move(*op->outcome);
}

struct AppendOutcome {
  std::uint64_t seqno = 0;
  Name record_hash;
  std::uint32_t acks = 0;
  bool via_hmac = false;       ///< steady-state session authentication?
  std::size_t ack_bytes = 0;   ///< serialized ack size (overhead ablation)
};

struct ReadOutcome {
  std::vector<capsule::Record> records;  ///< verified, ascending seqnos
  capsule::Heartbeat heartbeat;          ///< verified writer attestation
  /// Header path connecting the heartbeat to records.back() — a ready
  /// MembershipProof of the newest record (used e.g. for timeline
  /// entanglement verification across capsules).
  std::vector<capsule::RecordHeader> link_path;
  /// Multi-writer capsules only: verified off-canonical records (the
  /// losing sides of append races).  Each was checked standalone against
  /// the credential in its own payload envelope; readers merge them with
  /// the canonical range for a deterministic full-tree replay.
  std::vector<capsule::Record> branch_records;
  bool via_hmac = false;
  std::size_t response_bytes = 0;

  capsule::MembershipProof newest_membership() const {
    return capsule::MembershipProof{link_path};
  }
};

/// Result of a compare-and-append.  A lost race is NOT an error — the op
/// resolves ok with won == false and the server's current tip, so the
/// caller can rebase and retry under its budget.
struct CasOutcome {
  bool won = false;
  // Win side (mirrors AppendOutcome).
  std::uint64_t seqno = 0;
  Name record_hash;
  std::uint32_t acks = 0;
  // Loss side: why (kConflict or kLeaseHeld) and where the tip is now.
  Errc code = Errc::kOk;
  std::uint64_t tip_seqno = 0;
  Name tip_hash;
  Name lease_holder;  ///< zero when no lease was involved
  std::int64_t lease_expires_ns = 0;
};

/// Result of a lease acquire/renew/release.  Denials resolve ok with
/// granted == false (leases are advisory; losing one is normal).
struct LeaseOutcome {
  bool granted = false;
  Errc code = Errc::kOk;  ///< kLeaseHeld etc. when denied
  std::uint64_t lease_id = 0;
  Name holder;  ///< current holder (the winner, on denial)
  std::int64_t expires_ns = 0;
  std::uint64_t tip_seqno = 0;  ///< replica tip at decision time
  Name tip_hash;
};

class GdpClient : public router::Endpoint {
 public:
  struct Options {
    Duration op_timeout = from_seconds(30);
    bool use_sessions = true;  ///< establish HMAC sessions after first contact
    /// Budgeted read retries (off by default: reads fail fast on their
    /// first timeout or shed, exactly as before).  When on, a read that
    /// times out or is shed by an overloaded replica (kUnavailable
    /// fail-fast) is re-sent under a fresh nonce — route leases mean the
    /// retry may land on a different replica — as long as the token-bucket
    /// budget grants it and `max_read_attempts` is not exhausted.
    bool retry_reads = false;
    std::uint32_t max_read_attempts = 3;
    loadmgmt::RetryBudgetConfig retry_budget;
  };

  GdpClient(net::Network& net, const crypto::PrivateKey& key, std::string label,
            Options options);
  GdpClient(net::Network& net, const crypto::PrivateKey& key, std::string label)
      : GdpClient(net, key, std::move(label), Options{}) {}

  /// Places a capsule on a specific server (owner-side placement),
  /// shipping metadata + AdCert-backed delegation + the replica peer set.
  OpPtr<bool> create_capsule(const Name& server, const capsule::Metadata& metadata,
                             const trust::ServingDelegation& delegation,
                             std::vector<Name> replica_peers);

  /// Appends through a locally held Writer; the record is routed to the
  /// capsule name (closest replica).  required_acks selects the §VI-B
  /// durability mode.
  OpPtr<AppendOutcome> append(capsule::Writer& writer, BytesView payload,
                              std::uint32_t required_acks = 1);

  /// Sends a pre-built record (used when replaying / retrying).
  OpPtr<AppendOutcome> append_record(const capsule::Metadata& metadata,
                                     const capsule::Record& record,
                                     std::uint32_t required_acks = 1);

  /// SCL optimistic compare-and-append: the append lands only if the
  /// replica's canonical tip still is (expected_tip_seqno,
  /// expected_tip_hash); a lost race resolves with won == false and the
  /// current tip to rebase onto.  `lease_id` presents a held tip lease
  /// (0 = none).
  OpPtr<CasOutcome> cond_append(const capsule::Metadata& metadata,
                                const capsule::Record& record,
                                std::uint64_t expected_tip_seqno,
                                const Name& expected_tip_hash,
                                std::uint32_t required_acks = 1,
                                std::uint64_t lease_id = 0);

  /// SCL capsule-tip lease control; `op` is a LeaseRequestMsg op code.
  /// The grant carries the replica's current tip, so acquiring doubles as
  /// a tip fetch.
  OpPtr<LeaseOutcome> lease_request(const capsule::Metadata& metadata,
                                    std::uint8_t op, std::uint64_t lease_id,
                                    Duration duration);
  OpPtr<LeaseOutcome> lease_acquire(const capsule::Metadata& metadata,
                                    Duration duration);
  OpPtr<LeaseOutcome> lease_renew(const capsule::Metadata& metadata,
                                  std::uint64_t lease_id, Duration duration);
  OpPtr<LeaseOutcome> lease_release(const capsule::Metadata& metadata,
                                    std::uint64_t lease_id);

  /// Verified range read [first, last] (0,0 = latest) from the closest
  /// replica.
  OpPtr<ReadOutcome> read(const capsule::Metadata& metadata,
                          std::uint64_t first_seqno, std::uint64_t last_seqno);
  OpPtr<ReadOutcome> read_latest(const capsule::Metadata& metadata) {
    return read(metadata, 0, 0);
  }

  /// Strict-consistency read (§VI-C): queries every named replica server
  /// directly and returns the freshest verified state; fails if any
  /// replica is unreachable.
  OpPtr<ReadOutcome> read_latest_strict(const capsule::Metadata& metadata,
                                        const std::vector<Name>& replica_servers);

  using SubscriptionCallback =
      std::function<void(const capsule::Record&, const capsule::Heartbeat&)>;

  /// Subscribes to future records (event-driven programming model).  The
  /// SubCert proves this client may join the feed.
  OpPtr<bool> subscribe(const capsule::Metadata& metadata, const trust::Cert& sub_cert,
                        SubscriptionCallback callback);

  /// Server principals whose identity we verified via delegation evidence.
  bool knows_server(const Name& server) const { return known_servers_.contains(server); }

  /// Hook for CAAPI services built on top of the client (e.g. the
  /// multi-writer commit service): receives PDU types the client itself
  /// does not consume.  Return true when handled.
  using AppHandler = std::function<bool(const Name& from, const wire::Pdu& pdu)>;
  void set_app_handler(AppHandler handler) { app_handler_ = std::move(handler); }

  /// Raw PDU injection for services replying to app-level messages.
  void send_app_pdu(const Name& dst, wire::MsgType type, Bytes payload,
                    std::uint64_t flow_id = 0) {
    send_pdu(dst, type, std::move(payload), flow_id);
  }

  /// Read-retry token bucket (tests inspect grant/denial accounting).
  const loadmgmt::RetryBudget& read_retry_budget() const {
    return read_retry_budget_;
  }

  /// Memoizing multi-writer credential checker bound to this client's
  /// verify cache; CAAPI layers replaying MW capsules share it so each
  /// writer credential costs one ECDSA verify per client, not per record.
  const capsule::SigChecker& credential_checker() const {
    return credential_checker_;
  }

 protected:
  void handle_pdu(const Name& from, const wire::Pdu& pdu) override;

 private:
  struct Subscription {
    capsule::Metadata metadata;
    SubscriptionCallback callback;
    std::unordered_set<Name> seen;
  };

  /// Verifies a response authenticator; on signature path also validates
  /// and caches the server principal + delegation.
  Status verify_response_auth(const Name& responding_server, const Name& capsule,
                              BytesView body, const wire::ResponseAuth& auth,
                              BytesView principal_bytes, BytesView delegation_bytes,
                              const capsule::Metadata* metadata);
  Bytes session_pubkey_for_request() const;
  /// Registers a response handler plus its (cancellable) guard timeout.
  void register_pending(std::uint64_t nonce,
                        std::function<void(const wire::Pdu&)> handler,
                        std::function<void()> on_timeout);
  /// Extracts and returns the handler for `nonce`, cancelling its timer.
  std::optional<std::function<void(const wire::Pdu&)>> take_pending(
      std::uint64_t nonce);
  Result<ReadOutcome> parse_read_response(const wire::Pdu& pdu,
                                          const capsule::Metadata& metadata,
                                          std::uint64_t first, std::uint64_t last);
  /// Sends attempt #`attempt` of a read and arms its response/timeout
  /// handlers (the retry path re-enters here with a fresh nonce).
  void start_read(const OpPtr<ReadOutcome>& op, const capsule::Metadata& metadata,
                  std::uint64_t first, std::uint64_t last, std::uint32_t attempt);
  /// True = a retry was dispatched (budget granted, attempts left) and the
  /// op stays pending; false = the caller must resolve it terminally.
  bool maybe_retry_read(const OpPtr<ReadOutcome>& op,
                        const capsule::Metadata& metadata, std::uint64_t first,
                        std::uint64_t last, std::uint32_t attempt);

  struct PendingRequest {
    std::function<void(const wire::Pdu&)> handler;
    net::Simulator::TimerHandle timeout;
    TimePoint started;  ///< sim time the request went out (op latency)
  };

  Options options_;
  crypto::PrivateKey session_key_;  ///< ephemeral ECDH half for HMAC sessions
  std::unordered_map<std::uint64_t, PendingRequest> pending_;
  std::unordered_map<Name, trust::Principal> known_servers_;
  std::unordered_map<Name, crypto::SymmetricKey> session_keys_;  ///< by server
  std::unordered_map<Name, Subscription> subscriptions_;         ///< by capsule
  AppHandler app_handler_;
  std::uint64_t next_nonce_ = 1;
  loadmgmt::RetryBudget read_retry_budget_;
  trust::VerifyCache credential_cache_;
  capsule::SigChecker credential_checker_;

  // Telemetry handles (`client.<label>.*`).  Latency is *simulated* time
  // from request send to response arrival, so dumps stay deterministic.
  telemetry::Counter& ops_started_;
  telemetry::Counter& ops_timed_out_;
  telemetry::Counter& read_retries_;
  telemetry::Counter& read_retries_denied_;
  telemetry::Histogram& op_latency_ns_;
};

}  // namespace gdp::client
