#include "client/client.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "crypto/hmac.hpp"

namespace gdp::client {

using capsule::Heartbeat;
using capsule::RangeProof;
using capsule::Record;

GdpClient::GdpClient(net::Network& net, const crypto::PrivateKey& key,
                     std::string label, Options options)
    : Endpoint(net, key, trust::Role::kClient, std::move(label)),
      options_(options),
      session_key_(crypto::PrivateKey::generate(net.sim().rng())),
      read_retry_budget_(options.retry_budget),
      ops_started_(net_.metrics().counter(
          "client." + std::string(self_.label()) + ".ops.started")),
      ops_timed_out_(net_.metrics().counter(
          "client." + std::string(self_.label()) + ".ops.timed_out")),
      read_retries_(net_.metrics().counter(
          "client." + std::string(self_.label()) + ".read.retries")),
      read_retries_denied_(net_.metrics().counter(
          "client." + std::string(self_.label()) + ".read.retries_denied")),
      op_latency_ns_(net_.metrics().histogram(
          "client." + std::string(self_.label()) + ".op.latency_ns")) {
  credential_checker_ = [this](const crypto::PublicKey& issuer, BytesView payload,
                               const crypto::Signature& sig,
                               std::int64_t expires_ns, std::int64_t now_ns) {
    return trust::cached_verify(&credential_cache_, issuer, payload, sig,
                                expires_ns, TimePoint(now_ns));
  };
}

Bytes GdpClient::session_pubkey_for_request() const {
  if (!options_.use_sessions) return {};
  return session_key_.public_key().encode();
}

void GdpClient::register_pending(std::uint64_t nonce,
                                 std::function<void(const wire::Pdu&)> handler,
                                 std::function<void()> on_timeout) {
  ops_started_.inc();
  auto timer = net_.sim().schedule_cancellable(
      options_.op_timeout, [this, nonce, on_timeout = std::move(on_timeout)] {
        auto it = pending_.find(nonce);
        if (it == pending_.end()) return;
        pending_.erase(it);
        ops_timed_out_.inc();
        on_timeout();
      });
  pending_[nonce] =
      PendingRequest{std::move(handler), std::move(timer), net_.sim().now()};
}

std::optional<std::function<void(const wire::Pdu&)>> GdpClient::take_pending(
    std::uint64_t nonce) {
  auto it = pending_.find(nonce);
  if (it == pending_.end()) return std::nullopt;
  it->second.timeout.cancel();
  op_latency_ns_.record(
      static_cast<std::uint64_t>((net_.sim().now() - it->second.started).count()));
  auto handler = std::move(it->second.handler);
  pending_.erase(it);
  return handler;
}

// ---- Response authentication --------------------------------------------------

Status GdpClient::verify_response_auth(const Name& responding_server,
                                       const Name& capsule, BytesView body,
                                       const wire::ResponseAuth& auth,
                                       BytesView principal_bytes,
                                       BytesView delegation_bytes,
                                       const capsule::Metadata* metadata) {
  (void)capsule;
  // Evidence handling: a principal (and, when hosted, the delegation
  // chain) rides along on first contact or in sessionless mode.
  if (!principal_bytes.empty()) {
    GDP_ASSIGN_OR_RETURN(trust::Principal principal,
                         trust::Principal::deserialize(principal_bytes));
    if (principal.name() != responding_server) {
      return make_error(Errc::kVerificationFailed,
                        "response evidence names a different server");
    }
    if (!delegation_bytes.empty() && metadata != nullptr) {
      GDP_ASSIGN_OR_RETURN(trust::ServingDelegation delegation,
                           trust::ServingDelegation::deserialize(delegation_bytes));
      GDP_RETURN_IF_ERROR(trust::verify_serving_delegation(
          *metadata, principal, delegation, net_.sim().now()));
      known_servers_.insert_or_assign(principal.name(), principal);
    } else if (metadata != nullptr) {
      return make_error(Errc::kPermissionDenied,
                        "server presented no delegation for this capsule");
    }
  }

  switch (auth.kind) {
    case wire::ResponseAuth::Kind::kSignature: {
      auto it = known_servers_.find(responding_server);
      if (it == known_servers_.end()) {
        return make_error(Errc::kVerificationFailed,
                          "signed response from an unverified server");
      }
      auto sig = crypto::Signature::decode(auth.bytes);
      if (!sig || !it->second.key().verify(body, *sig)) {
        return make_error(Errc::kVerificationFailed, "response signature invalid");
      }
      return ok_status();
    }
    case wire::ResponseAuth::Kind::kHmac: {
      auto key_it = session_keys_.find(responding_server);
      if (key_it == session_keys_.end()) {
        auto srv = known_servers_.find(responding_server);
        if (srv == known_servers_.end()) {
          return make_error(Errc::kVerificationFailed,
                            "HMAC response from an unknown server");
        }
        key_it = session_keys_
                     .emplace(responding_server,
                              crypto::ecdh_shared_key(session_key_, srv->second.key()))
                     .first;
      }
      if (!crypto::hmac_verify(
              BytesView(key_it->second.data(), key_it->second.size()), body,
              auth.bytes)) {
        return make_error(Errc::kVerificationFailed, "response HMAC invalid");
      }
      return ok_status();
    }
    case wire::ResponseAuth::Kind::kNone:
      break;
  }
  return make_error(Errc::kVerificationFailed, "response carries no authenticator");
}

// ---- Operations -----------------------------------------------------------------

OpPtr<bool> GdpClient::create_capsule(const Name& server,
                                      const capsule::Metadata& metadata,
                                      const trust::ServingDelegation& delegation,
                                      std::vector<Name> replica_peers) {
  auto op = std::make_shared<Op<bool>>();
  wire::CreateCapsuleMsg msg;
  msg.metadata = metadata.serialize();
  msg.delegation = delegation.serialize();
  msg.replica_peers = std::move(replica_peers);
  msg.nonce = next_nonce_++;

  register_pending(
      msg.nonce,
      [op](const wire::Pdu& pdu) {
        auto status = wire::StatusMsg::deserialize(pdu.payload);
        if (!status.ok()) {
          op->resolve(status.error());
          return;
        }
        if (!status->ok) {
          op->resolve(make_error(static_cast<Errc>(status->code), status->message));
          return;
        }
        op->resolve(true);
      },
      [op] {
        op->timed_out = true;
        op->resolve(make_error(Errc::kUnavailable, "create_capsule timed out"));
      });
  send_pdu(server, wire::MsgType::kCreateCapsule, msg.serialize());
  return op;
}

OpPtr<AppendOutcome> GdpClient::append(capsule::Writer& writer, BytesView payload,
                                       std::uint32_t required_acks) {
  Record record = writer.append(payload, net_.sim().now().count());
  return append_record(writer.metadata(), record, required_acks);
}

OpPtr<AppendOutcome> GdpClient::append_record(const capsule::Metadata& metadata,
                                              const capsule::Record& record,
                                              std::uint32_t required_acks) {
  auto op = std::make_shared<Op<AppendOutcome>>();
  wire::AppendMsg msg;
  msg.capsule = metadata.name();
  msg.record = record;
  msg.required_acks = required_acks;
  msg.nonce = next_nonce_++;
  msg.session_pubkey = session_pubkey_for_request();

  const Name expected_hash = record.hash();
  capsule::Metadata meta_copy = metadata;
  auto append_handler = [this, op, expected_hash,
                         meta_copy = std::move(meta_copy)](const wire::Pdu& pdu) {
    auto ack = wire::AppendAckMsg::deserialize(pdu.payload);
    if (!ack.ok()) {
      op->resolve(ack.error());
      return;
    }
    Status auth_ok = verify_response_auth(pdu.src, ack->capsule, ack->signed_body(),
                                          ack->auth, ack->server_principal,
                                          ack->delegation, &meta_copy);
    if (!auth_ok.ok()) {
      op->resolve(auth_ok.error());
      return;
    }
    if (ack->record_hash != expected_hash) {
      op->resolve(make_error(Errc::kVerificationFailed,
                             "ack attests a different record"));
      return;
    }
    if (!ack->ok) {
      op->resolve(make_error(Errc::kUnavailable, "append rejected: " + ack->error));
      return;
    }
    AppendOutcome out;
    out.seqno = ack->seqno;
    out.record_hash = ack->record_hash;
    out.acks = ack->acks;
    out.via_hmac = ack->auth.kind == wire::ResponseAuth::Kind::kHmac;
    out.ack_bytes = pdu.payload.size();
    op->resolve(out);
  };
  register_pending(msg.nonce, std::move(append_handler), [op] {
    op->timed_out = true;
    op->resolve(make_error(Errc::kUnavailable, "append timed out"));
  });
  send_pdu(metadata.name(), wire::MsgType::kAppend, msg.serialize());
  return op;
}

OpPtr<CasOutcome> GdpClient::cond_append(const capsule::Metadata& metadata,
                                         const capsule::Record& record,
                                         std::uint64_t expected_tip_seqno,
                                         const Name& expected_tip_hash,
                                         std::uint32_t required_acks,
                                         std::uint64_t lease_id) {
  auto op = std::make_shared<Op<CasOutcome>>();
  wire::CondAppendMsg msg;
  msg.capsule = metadata.name();
  msg.record = record;
  msg.expected_tip_seqno = expected_tip_seqno;
  msg.expected_tip_hash = expected_tip_hash;
  msg.required_acks = required_acks;
  msg.lease_id = lease_id;
  msg.nonce = next_nonce_++;
  msg.session_pubkey = session_pubkey_for_request();

  const Name expected_hash = record.hash();
  capsule::Metadata meta_copy = metadata;
  auto handler = [this, op, expected_hash,
                  meta_copy = std::move(meta_copy)](const wire::Pdu& pdu) {
    if (pdu.type == wire::MsgType::kCasNack) {
      auto nack = wire::CasNackMsg::deserialize(pdu.payload);
      if (!nack.ok()) {
        op->resolve(nack.error());
        return;
      }
      Status auth_ok = verify_response_auth(pdu.src, nack->capsule,
                                            nack->signed_body(), nack->auth,
                                            nack->server_principal,
                                            nack->delegation, &meta_copy);
      if (!auth_ok.ok()) {
        op->resolve(auth_ok.error());
        return;
      }
      CasOutcome out;
      out.won = false;
      out.code = static_cast<Errc>(nack->code);
      out.tip_seqno = nack->tip_seqno;
      out.tip_hash = nack->tip_hash;
      out.lease_holder = nack->lease_holder;
      out.lease_expires_ns = nack->lease_expires_ns;
      op->resolve(out);
      return;
    }
    // The win path acks exactly like a plain append.
    auto ack = wire::AppendAckMsg::deserialize(pdu.payload);
    if (!ack.ok()) {
      op->resolve(ack.error());
      return;
    }
    Status auth_ok = verify_response_auth(pdu.src, ack->capsule, ack->signed_body(),
                                          ack->auth, ack->server_principal,
                                          ack->delegation, &meta_copy);
    if (!auth_ok.ok()) {
      op->resolve(auth_ok.error());
      return;
    }
    if (ack->record_hash != expected_hash) {
      op->resolve(make_error(Errc::kVerificationFailed,
                             "ack attests a different record"));
      return;
    }
    if (!ack->ok) {
      op->resolve(
          make_error(Errc::kUnavailable, "cond_append rejected: " + ack->error));
      return;
    }
    CasOutcome out;
    out.won = true;
    out.seqno = ack->seqno;
    out.record_hash = ack->record_hash;
    out.acks = ack->acks;
    op->resolve(out);
  };
  register_pending(msg.nonce, std::move(handler), [op] {
    op->timed_out = true;
    op->resolve(make_error(Errc::kUnavailable, "cond_append timed out"));
  });
  send_pdu(metadata.name(), wire::MsgType::kCondAppend, msg.serialize());
  return op;
}

OpPtr<LeaseOutcome> GdpClient::lease_request(const capsule::Metadata& metadata,
                                             std::uint8_t lease_op,
                                             std::uint64_t lease_id,
                                             Duration duration) {
  auto op = std::make_shared<Op<LeaseOutcome>>();
  wire::LeaseRequestMsg msg;
  msg.capsule = metadata.name();
  msg.op = lease_op;
  msg.holder = name();
  msg.lease_id = lease_id;
  msg.duration_ns = duration.count();
  msg.nonce = next_nonce_++;
  msg.session_pubkey = session_pubkey_for_request();

  capsule::Metadata meta_copy = metadata;
  auto handler = [this, op, meta_copy = std::move(meta_copy)](const wire::Pdu& pdu) {
    auto grant = wire::LeaseGrantMsg::deserialize(pdu.payload);
    if (!grant.ok()) {
      op->resolve(grant.error());
      return;
    }
    Status auth_ok = verify_response_auth(pdu.src, grant->capsule,
                                          grant->signed_body(), grant->auth,
                                          grant->server_principal,
                                          grant->delegation, &meta_copy);
    if (!auth_ok.ok()) {
      op->resolve(auth_ok.error());
      return;
    }
    LeaseOutcome out;
    out.granted = grant->ok;
    out.code = static_cast<Errc>(grant->code);
    out.lease_id = grant->lease_id;
    out.holder = grant->holder;
    out.expires_ns = grant->expires_ns;
    out.tip_seqno = grant->tip_seqno;
    out.tip_hash = grant->tip_hash;
    op->resolve(out);
  };
  register_pending(msg.nonce, std::move(handler), [op] {
    op->timed_out = true;
    op->resolve(make_error(Errc::kUnavailable, "lease request timed out"));
  });
  send_pdu(metadata.name(), wire::MsgType::kLeaseRequest, msg.serialize());
  return op;
}

OpPtr<LeaseOutcome> GdpClient::lease_acquire(const capsule::Metadata& metadata,
                                             Duration duration) {
  return lease_request(metadata, wire::LeaseRequestMsg::kAcquire, 0, duration);
}

OpPtr<LeaseOutcome> GdpClient::lease_renew(const capsule::Metadata& metadata,
                                           std::uint64_t lease_id,
                                           Duration duration) {
  return lease_request(metadata, wire::LeaseRequestMsg::kRenew, lease_id, duration);
}

OpPtr<LeaseOutcome> GdpClient::lease_release(const capsule::Metadata& metadata,
                                             std::uint64_t lease_id) {
  return lease_request(metadata, wire::LeaseRequestMsg::kRelease, lease_id,
                       Duration::zero());
}

Result<ReadOutcome> GdpClient::parse_read_response(const wire::Pdu& pdu,
                                                   const capsule::Metadata& metadata,
                                                   std::uint64_t first,
                                                   std::uint64_t last) {
  GDP_ASSIGN_OR_RETURN(wire::ReadResponseMsg resp,
                       wire::ReadResponseMsg::deserialize(pdu.payload));
  GDP_RETURN_IF_ERROR(verify_response_auth(pdu.src, resp.capsule, resp.signed_body(),
                                           resp.auth, resp.server_principal,
                                           resp.delegation, &metadata));
  if (!resp.ok) {
    // The code rides inside the signed body, so an on-path attacker cannot
    // rewrite a permanent failure into a retryable shed (or vice versa).
    if (static_cast<Errc>(resp.code) == Errc::kUnavailable) {
      return make_error(Errc::kUnavailable, "read failed: " + resp.error);
    }
    return make_error(Errc::kNotFound, "read failed: " + resp.error);
  }
  GDP_ASSIGN_OR_RETURN(Heartbeat hb, Heartbeat::deserialize(resp.heartbeat));
  GDP_ASSIGN_OR_RETURN(RangeProof proof, RangeProof::deserialize(resp.proof));
  if (proof.records.empty()) {
    return make_error(Errc::kVerificationFailed, "empty proof");
  }
  const std::uint64_t got_first = proof.records.front().header.seqno;
  const std::uint64_t got_last = proof.records.back().header.seqno;
  // The server may clamp an open-ended range to its tip, but must honor an
  // explicit start and never exceed the requested end.
  if (first != 0 && got_first != first) {
    return make_error(Errc::kVerificationFailed, "range start mismatch");
  }
  if (last != 0 && got_last > last) {
    return make_error(Errc::kVerificationFailed, "range end exceeds request");
  }
  GDP_RETURN_IF_ERROR(capsule::verify_range_proof(metadata, hb, proof, got_first,
                                                  got_last, credential_checker_));
  ReadOutcome out;
  out.records = std::move(proof.records);
  out.heartbeat = hb;
  out.link_path = std::move(proof.link_path);
  if (metadata.mode() == capsule::WriterMode::kMultiWriter) {
    // Off-canonical records each verify standalone through the credential
    // envelope in their own payload — an adversarial server can withhold
    // branches (liveness) but cannot inject fabricated ones (integrity).
    out.branch_records.reserve(resp.branch_records.size());
    for (const Bytes& raw : resp.branch_records) {
      GDP_ASSIGN_OR_RETURN(capsule::Record rec, capsule::Record::deserialize(raw));
      if (rec.header.capsule_name != metadata.name()) {
        return make_error(Errc::kVerificationFailed,
                          "branch record from another capsule");
      }
      GDP_ASSIGN_OR_RETURN(
          crypto::PublicKey writer,
          capsule::record_writer_key(metadata, rec, credential_checker_));
      GDP_RETURN_IF_ERROR(rec.verify_standalone(writer));
      out.branch_records.push_back(std::move(rec));
    }
  }
  out.via_hmac = resp.auth.kind == wire::ResponseAuth::Kind::kHmac;
  out.response_bytes = pdu.payload.size();
  return out;
}

OpPtr<ReadOutcome> GdpClient::read(const capsule::Metadata& metadata,
                                   std::uint64_t first_seqno,
                                   std::uint64_t last_seqno) {
  auto op = std::make_shared<Op<ReadOutcome>>();
  // Each fresh read earns a fraction of a retry token; only retries spend.
  if (options_.retry_reads) read_retry_budget_.on_request();
  start_read(op, metadata, first_seqno, last_seqno, /*attempt=*/1);
  return op;
}

bool GdpClient::maybe_retry_read(const OpPtr<ReadOutcome>& op,
                                 const capsule::Metadata& metadata,
                                 std::uint64_t first, std::uint64_t last,
                                 std::uint32_t attempt) {
  if (!options_.retry_reads || attempt >= options_.max_read_attempts) {
    return false;
  }
  if (!read_retry_budget_.try_retry()) {
    read_retries_denied_.inc();
    return false;
  }
  read_retries_.inc();
  start_read(op, metadata, first, last, attempt + 1);
  return true;
}

void GdpClient::start_read(const OpPtr<ReadOutcome>& op,
                           const capsule::Metadata& metadata,
                           std::uint64_t first, std::uint64_t last,
                           std::uint32_t attempt) {
  wire::ReadMsg msg;
  msg.capsule = metadata.name();
  msg.first_seqno = first;
  msg.last_seqno = last;
  msg.nonce = next_nonce_++;
  msg.session_pubkey = session_pubkey_for_request();

  capsule::Metadata meta_copy = metadata;
  register_pending(
      msg.nonce,
      [this, op, meta_copy, first, last, attempt](const wire::Pdu& pdu) {
        auto outcome = parse_read_response(pdu, meta_copy, first, last);
        // A shed fail-fast (kUnavailable in the signed body) is the one
        // response worth retrying: the route lease may have rotated the
        // name onto a healthier replica by now.
        if (!outcome.ok() && outcome.code() == Errc::kUnavailable &&
            maybe_retry_read(op, meta_copy, first, last, attempt)) {
          return;
        }
        op->resolve(std::move(outcome));
      },
      [this, op, meta_copy = std::move(meta_copy), first, last, attempt] {
        if (maybe_retry_read(op, meta_copy, first, last, attempt)) return;
        op->timed_out = true;
        op->resolve(make_error(Errc::kUnavailable, "read timed out"));
      });
  send_pdu(metadata.name(), wire::MsgType::kRead, msg.serialize());
}

OpPtr<ReadOutcome> GdpClient::read_latest_strict(
    const capsule::Metadata& metadata, const std::vector<Name>& replica_servers) {
  auto op = std::make_shared<Op<ReadOutcome>>();
  if (replica_servers.empty()) {
    op->resolve(make_error(Errc::kInvalidArgument, "no replicas named"));
    return op;
  }
  struct Gather {
    std::size_t awaiting;
    std::optional<ReadOutcome> best;
    bool failed = false;
  };
  auto gather = std::make_shared<Gather>();
  gather->awaiting = replica_servers.size();

  for (const Name& server : replica_servers) {
    wire::ReadMsg msg;
    msg.capsule = metadata.name();
    msg.nonce = next_nonce_++;
    msg.session_pubkey = session_pubkey_for_request();
    capsule::Metadata meta_copy = metadata;
    auto strict_handler = [this, op, gather,
                           meta_copy = std::move(meta_copy)](const wire::Pdu& pdu) {
      auto outcome = parse_read_response(pdu, meta_copy, 0, 0);
      if (!outcome.ok()) {
        gather->failed = true;
      } else if (!gather->best ||
                 outcome->heartbeat.seqno > gather->best->heartbeat.seqno) {
        gather->best = std::move(*outcome);
      }
      if (--gather->awaiting == 0) {
        // Strict consistency semantics: all replicas must answer (and
        // verifiably) or the reader blocks/fails (§VI-C).
        if (gather->failed || !gather->best) {
          op->resolve(make_error(Errc::kUnavailable,
                                 "strict read requires every replica"));
        } else {
          op->resolve(std::move(*gather->best));
        }
      }
    };
    register_pending(msg.nonce, std::move(strict_handler), [op] {
      op->timed_out = true;
      op->resolve(make_error(Errc::kUnavailable,
                             "strict read timed out (replica unreachable)"));
    });
    send_pdu(server, wire::MsgType::kRead, msg.serialize());
  }
  return op;
}

OpPtr<bool> GdpClient::subscribe(const capsule::Metadata& metadata,
                                 const trust::Cert& sub_cert,
                                 SubscriptionCallback callback) {
  auto op = std::make_shared<Op<bool>>();
  wire::SubscribeMsg msg;
  msg.capsule = metadata.name();
  msg.subscriber = name();
  msg.sub_cert = sub_cert.serialize();
  msg.nonce = next_nonce_++;

  subscriptions_.insert_or_assign(
      metadata.name(), Subscription{metadata, std::move(callback), {}});

  auto subscribe_handler = [this, op, capsule_name = metadata.name()](const wire::Pdu& pdu) {
    auto status = wire::StatusMsg::deserialize(pdu.payload);
    if (!status.ok() || !status->ok) {
      subscriptions_.erase(capsule_name);
      op->resolve(status.ok()
                      ? Result<bool>(make_error(static_cast<Errc>(status->code),
                                                status->message))
                      : Result<bool>(status.error()));
      return;
    }
    op->resolve(true);
  };
  register_pending(msg.nonce, std::move(subscribe_handler),
                   [this, op, capsule_name = metadata.name()] {
                     subscriptions_.erase(capsule_name);
                     op->timed_out = true;
                     op->resolve(make_error(Errc::kUnavailable, "subscribe timed out"));
                   });
  send_pdu(metadata.name(), wire::MsgType::kSubscribe, msg.serialize());
  return op;
}

// ---- Event dispatch ---------------------------------------------------------------

void GdpClient::handle_pdu(const Name& from, const wire::Pdu& pdu) {
  switch (pdu.type) {
    case wire::MsgType::kStatus: {
      auto msg = wire::StatusMsg::deserialize(pdu.payload);
      if (!msg.ok()) return;
      auto handler = take_pending(msg->nonce);
      if (!handler) return;  // duplicate / replayed
      (*handler)(pdu);
      return;
    }
    case wire::MsgType::kAppendAck: {
      auto msg = wire::AppendAckMsg::deserialize(pdu.payload);
      if (!msg.ok()) return;
      auto handler = take_pending(msg->nonce);
      if (!handler) return;
      (*handler)(pdu);
      return;
    }
    case wire::MsgType::kReadResponse: {
      auto msg = wire::ReadResponseMsg::deserialize(pdu.payload);
      if (!msg.ok()) return;
      auto handler = take_pending(msg->nonce);
      if (!handler) return;
      (*handler)(pdu);
      return;
    }
    case wire::MsgType::kCasNack: {
      auto msg = wire::CasNackMsg::deserialize(pdu.payload);
      if (!msg.ok()) return;
      auto handler = take_pending(msg->nonce);
      if (!handler) return;
      (*handler)(pdu);
      return;
    }
    case wire::MsgType::kLeaseGrant: {
      auto msg = wire::LeaseGrantMsg::deserialize(pdu.payload);
      if (!msg.ok()) return;
      auto handler = take_pending(msg->nonce);
      if (!handler) return;
      (*handler)(pdu);
      return;
    }
    case wire::MsgType::kPublish: {
      auto msg = wire::PublishMsg::deserialize(pdu.payload);
      if (!msg.ok()) return;
      auto sub = subscriptions_.find(msg->capsule);
      if (sub == subscriptions_.end()) return;
      Subscription& s = sub->second;
      const Name hash = msg->record.hash();
      if (s.seen.contains(hash)) return;  // replay / duplicate push
      // End-to-end validation: the event must carry the writer's own
      // signature and belong to this capsule — an adversarial server or
      // in-path attacker cannot inject fabricated events.
      if (msg->record.header.capsule_name != msg->capsule ||
          !msg->record.verify_standalone(s.metadata.writer_key()).ok()) {
        GDP_LOG(kWarn, "client") << "dropping forged publish event";
        return;
      }
      auto hb = Heartbeat::deserialize(msg->heartbeat);
      if (!hb.ok() || !hb->verify(s.metadata.writer_key()).ok()) {
        GDP_LOG(kWarn, "client") << "dropping publish with bad heartbeat";
        return;
      }
      s.seen.insert(hash);
      s.callback(msg->record, *hb);
      return;
    }
    default:
      if (app_handler_ && app_handler_(from, pdu)) return;
      GDP_LOG(kWarn, "client") << "unhandled PDU type " << static_cast<int>(pdu.type);
  }
}

}  // namespace gdp::client
