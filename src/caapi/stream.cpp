#include "caapi/stream.hpp"

namespace gdp::caapi {

StreamPublisher::StreamPublisher(harness::Scenario& scenario,
                                 client::GdpClient& client,
                                 harness::CapsuleSetup setup)
    : scenario_(scenario),
      client_(client),
      setup_(std::move(setup)),
      writer_(setup_.make_writer()) {}

Result<StreamPublisher> StreamPublisher::mount(const Mount& m) {
  if (!m.creates()) {
    return make_error(Errc::kInvalidArgument,
                      "a stream publisher creates its capsule; open with "
                      "StreamPlayer::mount instead");
  }
  harness::CapsuleSetup setup =
      harness::make_capsule(m.scenario().key_rng(), "stream:" + m.label());
  GDP_RETURN_IF_ERROR(
      harness::place_capsule(m.scenario(), setup, m.client(), m.servers()));
  return StreamPublisher(m.scenario(), m.client(), std::move(setup));
}

Result<StreamPlayer> StreamPlayer::mount(const Mount& m) {
  if (m.creates()) {
    return make_error(Errc::kInvalidArgument,
                      "a stream player opens an existing capsule; pass its "
                      "metadata via Mount::open");
  }
  return StreamPlayer(m.scenario(), m.client(), m.existing());
}

void StreamPublisher::publish_frame(BytesView frame) {
  // Fire and forget: the op resolves (or times out) in the background.
  client_.append(writer_, frame, 1);
  ++published_;
}

StreamPlayer::StreamPlayer(harness::Scenario& scenario, client::GdpClient& client,
                           const capsule::Metadata& metadata)
    : scenario_(scenario), client_(client), metadata_(metadata) {}

Result<bool> StreamPlayer::join(const trust::Cert& sub_cert) {
  auto op = client_.subscribe(
      metadata_, sub_cert,
      [this](const capsule::Record& rec, const capsule::Heartbeat&) {
        frames_[rec.header.seqno] = rec.payload;
        highest_ = std::max(highest_, rec.header.seqno);
      });
  return client::await(scenario_.sim(), op);
}

std::vector<std::uint64_t> StreamPlayer::gaps() const {
  std::vector<std::uint64_t> out;
  for (std::uint64_t s = 1; s < highest_; ++s) {
    if (!frames_.contains(s)) out.push_back(s);
  }
  return out;
}

Result<std::uint64_t> StreamPlayer::backfill() {
  std::uint64_t recovered = 0;
  for (std::uint64_t missing : gaps()) {
    auto op = client_.read(metadata_, missing, missing);
    auto outcome = client::await(scenario_.sim(), op);
    if (!outcome.ok()) return outcome.error();
    for (const capsule::Record& rec : outcome->records) {
      if (!frames_.contains(rec.header.seqno)) {
        frames_[rec.header.seqno] = rec.payload;
        ++recovered;
      }
    }
  }
  return recovered;
}

std::optional<Bytes> StreamPlayer::frame(std::uint64_t seqno) const {
  auto it = frames_.find(seqno);
  if (it == frames_.end()) return std::nullopt;
  return it->second;
}

}  // namespace gdp::caapi
