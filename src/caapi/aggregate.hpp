// Aggregation service (§VI-A option (b)).
//
// "...by creating an aggregation service that subscribes to multiple
// single-writer DataCapsules and combines them based on some
// application-level logic."  The Aggregator subscribes to N source
// capsules and appends every event into its own output capsule, stamped
// with the source capsule name and source seqno — a fan-in materialized
// view that downstream readers consume as one verified stream.
#pragma once

#include <vector>

#include "client/client.hpp"
#include "harness/scenario.hpp"

namespace gdp::caapi {

class Aggregator {
 public:
  Aggregator(harness::Scenario& scenario, client::GdpClient& client,
             harness::CapsuleSetup output_setup);

  /// Subscribes to a source capsule; events flow into the output capsule
  /// as they arrive.  `sub_cert` must grant this aggregator's client.
  Result<bool> add_source(const capsule::Metadata& source,
                          const trust::Cert& sub_cert);

  const capsule::Metadata& output_metadata() const { return setup_.metadata; }
  std::uint64_t events_aggregated() const { return events_; }

  /// Decodes an aggregated record into (source capsule, source seqno,
  /// original payload).
  static Result<std::tuple<Name, std::uint64_t, Bytes>> decode(BytesView payload);

 private:
  harness::Scenario& scenario_;
  client::GdpClient& client_;
  harness::CapsuleSetup setup_;
  capsule::Writer writer_;
  std::uint64_t events_ = 0;
};

}  // namespace gdp::caapi
