#include "caapi/timeseries.hpp"

#include "common/varint.hpp"

namespace gdp::caapi {

using client::await;

Bytes Sample::serialize() const {
  Bytes out;
  put_fixed64(out, static_cast<std::uint64_t>(timestamp_ns));
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  put_fixed64(out, bits);
  put_length_prefixed(out, tag);
  return out;
}

Result<Sample> Sample::deserialize(BytesView b) {
  ByteReader r(b);
  auto ts = r.get_fixed64();
  auto bits = r.get_fixed64();
  auto tag = r.get_length_prefixed();
  if (!ts || !bits || !tag || !r.empty()) {
    return make_error(Errc::kCorruptData, "malformed sample");
  }
  Sample s;
  s.timestamp_ns = static_cast<std::int64_t>(*ts);
  std::memcpy(&s.value, &*bits, sizeof(s.value));
  s.tag = std::move(*tag);
  return s;
}

TimeSeriesWriter::TimeSeriesWriter(harness::Scenario& scenario,
                                   client::GdpClient& client,
                                   harness::CapsuleSetup setup)
    : scenario_(scenario),
      client_(client),
      setup_(std::move(setup)),
      writer_(setup_.make_writer()) {}

Result<TimeSeriesWriter> TimeSeriesWriter::mount(const Mount& m) {
  if (!m.creates()) {
    return make_error(Errc::kInvalidArgument,
                      "a time-series writer creates its capsule; open with "
                      "TimeSeriesReader::mount instead");
  }
  harness::CapsuleSetup setup =
      harness::make_capsule(m.scenario().key_rng(), "ts:" + m.label());
  GDP_RETURN_IF_ERROR(
      harness::place_capsule(m.scenario(), setup, m.client(), m.servers()));
  return TimeSeriesWriter(m.scenario(), m.client(), std::move(setup));
}

Result<TimeSeriesReader> TimeSeriesReader::mount(const Mount& m) {
  if (m.creates()) {
    return make_error(Errc::kInvalidArgument,
                      "a time-series reader opens an existing capsule; pass "
                      "its metadata via Mount::open");
  }
  return TimeSeriesReader(m.scenario(), m.client(), m.existing());
}

Status TimeSeriesWriter::record(double value, BytesView tag) {
  Sample s;
  s.timestamp_ns = scenario_.sim().now().count();
  s.value = value;
  s.tag.assign(tag.begin(), tag.end());
  auto op = client_.append(writer_, s.serialize(), 1);
  GDP_ASSIGN_OR_RETURN(client::AppendOutcome outcome, await(scenario_.sim(), op));
  (void)outcome;
  ++count_;
  return ok_status();
}

TimeSeriesReader::TimeSeriesReader(harness::Scenario& scenario,
                                   client::GdpClient& client,
                                   const capsule::Metadata& metadata)
    : scenario_(scenario), client_(client), metadata_(metadata) {}

Result<std::int64_t> TimeSeriesReader::timestamp_at(std::uint64_t seqno) {
  ++point_reads_;
  auto op = client_.read(metadata_, seqno, seqno);
  GDP_ASSIGN_OR_RETURN(client::ReadOutcome outcome, await(scenario_.sim(), op));
  // The header timestamp is covered by the record hash — authenticated.
  return outcome.records.front().header.timestamp_ns;
}

Result<std::uint64_t> TimeSeriesReader::lower_bound_seqno(std::int64_t t,
                                                          std::uint64_t tip) {
  std::uint64_t lo = 1, hi = tip + 1;
  while (lo < hi) {
    std::uint64_t mid = lo + (hi - lo) / 2;
    GDP_ASSIGN_OR_RETURN(std::int64_t ts, timestamp_at(mid));
    if (ts < t) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Result<std::vector<Sample>> TimeSeriesReader::query(TimePoint t0, TimePoint t1) {
  point_reads_ = 0;
  // Find the tip first.
  auto latest_op = client_.read_latest(metadata_);
  GDP_ASSIGN_OR_RETURN(client::ReadOutcome latest, await(scenario_.sim(), latest_op));
  const std::uint64_t tip = latest.records.back().header.seqno;

  GDP_ASSIGN_OR_RETURN(std::uint64_t first, lower_bound_seqno(t0.count(), tip));
  GDP_ASSIGN_OR_RETURN(std::uint64_t past, lower_bound_seqno(t1.count() + 1, tip));
  std::vector<Sample> out;
  if (first >= past) return out;  // empty window

  auto op = client_.read(metadata_, first, past - 1);
  GDP_ASSIGN_OR_RETURN(client::ReadOutcome outcome, await(scenario_.sim(), op));
  out.reserve(outcome.records.size());
  for (const capsule::Record& rec : outcome.records) {
    GDP_ASSIGN_OR_RETURN(Sample s, Sample::deserialize(rec.payload));
    out.push_back(std::move(s));
  }
  return out;
}

Result<std::vector<Sample>> TimeSeriesReader::latest(std::uint64_t n) {
  auto latest_op = client_.read_latest(metadata_);
  GDP_ASSIGN_OR_RETURN(client::ReadOutcome tip_read, await(scenario_.sim(), latest_op));
  const std::uint64_t tip = tip_read.records.back().header.seqno;
  const std::uint64_t first = tip > n ? tip - n + 1 : 1;
  auto op = client_.read(metadata_, first, tip);
  GDP_ASSIGN_OR_RETURN(client::ReadOutcome outcome, await(scenario_.sim(), op));
  std::vector<Sample> out;
  out.reserve(outcome.records.size());
  for (const capsule::Record& rec : outcome.records) {
    GDP_ASSIGN_OR_RETURN(Sample s, Sample::deserialize(rec.payload));
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace gdp::caapi
