// Multi-writer support via a serializing commit service (§VI-A).
//
// "Multiple writers can be accommodated ... by using a distributed commit
// service that accepts updates from multiple writers, serializes them, and
// appends them to a DataCapsule ... such a distributed commit service is
// the single writer, and represents a separation of write decisions from
// durability responsibilities."
//
// CommitService is a GDP principal that holds the capsule's writer key.
// Producers send kProposal PDUs to its flat name; the service stamps each
// proposal with the proposer identity, appends in arrival order, and
// answers with the assigned seqno.
#pragma once

#include <memory>

#include "caapi/mount.hpp"
#include "client/client.hpp"
#include "harness/scenario.hpp"

namespace gdp::caapi {

class CommitService {
 public:
  /// Shared CAAPI entry point (create-new only: the service is the
  /// capsule's single writer).  Returns a stable-address handle because
  /// the constructor registers `this` as the client's app handler.
  static Result<std::unique_ptr<CommitService>> mount(const Mount& m);

  /// `service_client` is the GDP client acting as the service's network
  /// identity; the service installs itself as its app handler.
  CommitService(harness::Scenario& scenario, client::GdpClient& service_client,
                harness::CapsuleSetup setup, std::uint32_t required_acks = 1);

  const Name& service_name() const { return client_.name(); }
  const capsule::Metadata& metadata() const { return setup_.metadata; }
  std::uint64_t proposals_committed() const { return committed_; }

  /// Decodes a committed record back into (proposer, payload).
  static Result<std::pair<Name, Bytes>> decode_committed(BytesView record_payload);

 private:
  bool on_app_pdu(const Name& from, const wire::Pdu& pdu);
  /// Polls `op` from the event loop; acks `proposer` once it resolves.
  void poll_append(client::OpPtr<client::AppendOutcome> op, Name proposer,
                   std::uint64_t flow);

  harness::Scenario& scenario_;
  client::GdpClient& client_;
  harness::CapsuleSetup setup_;
  capsule::Writer writer_;
  std::uint32_t required_acks_;
  std::uint64_t committed_ = 0;
};

/// Producer-side helper: wraps a GDP client and proposes payloads to a
/// commit service; each proposal resolves with its assigned seqno.
class Proposer {
 public:
  Proposer(harness::Scenario& scenario, client::GdpClient& producer);

  client::OpPtr<std::uint64_t> propose(const Name& service, BytesView payload);

 private:
  bool on_app_pdu(const Name& from, const wire::Pdu& pdu);

  harness::Scenario& scenario_;
  client::GdpClient& client_;
  std::unordered_map<std::uint64_t, client::OpPtr<std::uint64_t>> pending_;
  std::uint64_t next_flow_ = 1;
};

}  // namespace gdp::caapi
