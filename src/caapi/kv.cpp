#include "caapi/kv.hpp"

#include "common/varint.hpp"

namespace gdp::caapi {

using client::await;

namespace {
constexpr std::uint8_t kPut = 1;
constexpr std::uint8_t kDel = 2;
constexpr std::uint8_t kCheckpoint = 3;
}  // namespace

GdpKvStore::GdpKvStore(harness::Scenario& scenario, client::GdpClient& client,
                       Options options, harness::CapsuleSetup setup,
                       std::optional<capsule::Writer> writer)
    : scenario_(scenario),
      client_(client),
      options_(options),
      setup_(std::move(setup)),
      writer_(std::move(writer)) {}

Result<GdpKvStore> GdpKvStore::mount(const Mount& m) {
  Options options;
  options.checkpoint_interval = m.options().checkpoint_interval;
  options.required_acks = m.options().required_acks;
  if (m.creates()) {
    return create(m.scenario(), m.client(), m.servers(), m.label(), options);
  }
  // Open-existing: a read-only recovered view (the capsule is
  // strict-single-writer; only the creating mount holds its writer key).
  harness::CapsuleSetup setup{nullptr, nullptr, m.existing(), "chain"};
  GdpKvStore store(m.scenario(), m.client(), options, std::move(setup),
                   std::nullopt);
  GDP_RETURN_IF_ERROR(store.recover(m.existing()));
  return store;
}

Result<GdpKvStore> GdpKvStore::create(harness::Scenario& scenario,
                                      client::GdpClient& client,
                                      std::vector<server::CapsuleServer*> servers,
                                      const std::string& label, Options options) {
  if (options.checkpoint_interval == 0) options.checkpoint_interval = 1;
  // Align the hash-pointer strategy with the snapshot cadence: every
  // record carries a pointer to the latest checkpoint record.
  harness::CapsuleSetup setup = harness::make_capsule(
      scenario.key_rng(), "kv:" + label, capsule::WriterMode::kStrictSingleWriter,
      "checkpoint:" + std::to_string(options.checkpoint_interval + 1));
  GDP_RETURN_IF_ERROR(harness::place_capsule(scenario, setup, client, servers));
  capsule::Writer writer = setup.make_writer();
  return GdpKvStore(scenario, client, options, std::move(setup), std::move(writer));
}

Status GdpKvStore::append_op(Bytes payload) {
  if (!writer_.has_value()) {
    return make_error(Errc::kPermissionDenied, "read-only kv mount");
  }
  auto op = client_.append(*writer_, payload, options_.required_acks);
  GDP_ASSIGN_OR_RETURN(client::AppendOutcome outcome, await(scenario_.sim(), op));
  (void)outcome;
  return ok_status();
}

Bytes GdpKvStore::snapshot_payload() const {
  Bytes payload{kCheckpoint};
  put_varint(payload, map_.size());
  for (const auto& [k, v] : map_) {
    put_length_prefixed(payload, to_bytes(k));
    put_length_prefixed(payload, to_bytes(v));
  }
  return payload;
}

Status GdpKvStore::put(const std::string& key, const std::string& value) {
  Bytes payload{kPut};
  put_length_prefixed(payload, to_bytes(key));
  put_length_prefixed(payload, to_bytes(value));
  GDP_RETURN_IF_ERROR(append_op(std::move(payload)));
  map_[key] = value;
  if (++ops_since_checkpoint_ >= options_.checkpoint_interval) {
    GDP_RETURN_IF_ERROR(append_op(snapshot_payload()));
    ops_since_checkpoint_ = 0;
  }
  return ok_status();
}

Status GdpKvStore::del(const std::string& key) {
  Bytes payload{kDel};
  put_length_prefixed(payload, to_bytes(key));
  GDP_RETURN_IF_ERROR(append_op(std::move(payload)));
  map_.erase(key);
  if (++ops_since_checkpoint_ >= options_.checkpoint_interval) {
    GDP_RETURN_IF_ERROR(append_op(snapshot_payload()));
    ops_since_checkpoint_ = 0;
  }
  return ok_status();
}

std::optional<std::string> GdpKvStore::get(const std::string& key) const {
  auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

Status GdpKvStore::apply(BytesView payload) {
  if (payload.empty()) return make_error(Errc::kCorruptData, "empty kv record");
  ByteReader r(payload.subspan(1));
  switch (payload[0]) {
    case kPut: {
      auto k = r.get_length_prefixed();
      auto v = r.get_length_prefixed();
      if (!k || !v) return make_error(Errc::kCorruptData, "truncated put");
      map_[to_string(*k)] = to_string(*v);
      return ok_status();
    }
    case kDel: {
      auto k = r.get_length_prefixed();
      if (!k) return make_error(Errc::kCorruptData, "truncated del");
      map_.erase(to_string(*k));
      return ok_status();
    }
    case kCheckpoint: {
      auto count = r.get_varint();
      if (!count) return make_error(Errc::kCorruptData, "truncated checkpoint");
      map_.clear();
      for (std::uint64_t i = 0; i < *count; ++i) {
        auto k = r.get_length_prefixed();
        auto v = r.get_length_prefixed();
        if (!k || !v) return make_error(Errc::kCorruptData, "truncated checkpoint pair");
        map_[to_string(*k)] = to_string(*v);
      }
      return ok_status();
    }
    default:
      return make_error(Errc::kCorruptData, "unknown kv record tag");
  }
}

Result<std::uint64_t> GdpKvStore::recover(const capsule::Metadata& metadata) {
  // Find the tip first.
  auto latest = await(scenario_.sim(), client_.read_latest(metadata));
  if (!latest.ok()) return latest.error();
  const std::uint64_t tip = latest->records.back().header.seqno;

  // A checkpoint is guaranteed within any window of interval+1 records
  // once one exists; otherwise the window reaches back to record 1.
  const std::uint64_t window = options_.checkpoint_interval + 1;
  const std::uint64_t first = tip > window ? tip - window + 1 : 1;
  auto outcome = await(scenario_.sim(), client_.read(metadata, first, tip));
  if (!outcome.ok()) return outcome.error();

  // Replay from the last checkpoint in the window (or from scratch).
  std::size_t start = 0;
  for (std::size_t i = outcome->records.size(); i > 0; --i) {
    if (!outcome->records[i - 1].payload.empty() &&
        outcome->records[i - 1].payload[0] == kCheckpoint) {
      start = i - 1;
      break;
    }
  }
  map_.clear();
  for (std::size_t i = start; i < outcome->records.size(); ++i) {
    GDP_RETURN_IF_ERROR(apply(outcome->records[i].payload));
  }
  return static_cast<std::uint64_t>(outcome->records.size());
}

}  // namespace gdp::caapi
