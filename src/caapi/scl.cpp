#include "caapi/scl.hpp"

namespace gdp::caapi {

using client::await;

SclSession::SclSession(harness::Scenario& scenario, client::GdpClient& client,
                       capsule::Metadata metadata, capsule::Writer writer,
                       Options options)
    : scenario_(scenario),
      client_(client),
      metadata_(std::move(metadata)),
      writer_(std::move(writer)),
      options_(options),
      budget_(options.retry_budget) {}

Result<client::LeaseOutcome> SclSession::acquire_lease() {
  auto op = lease_id_ == 0
                ? client_.lease_acquire(metadata_, options_.lease_duration)
                : client_.lease_renew(metadata_, lease_id_, options_.lease_duration);
  GDP_ASSIGN_OR_RETURN(client::LeaseOutcome outcome, await(scenario_.sim(), op));
  if (outcome.granted) {
    lease_id_ = outcome.lease_id;
    lease_expires_ns_ = outcome.expires_ns;
    // The grant carries the replica tip: sync the local writer onto it so
    // the next CAS starts from truth instead of a guess.
    GDP_RETURN_IF_ERROR(writer_.rebase(outcome.tip_seqno, outcome.tip_hash));
  } else {
    lease_id_ = 0;
    lease_expires_ns_ = 0;
  }
  return outcome;
}

Status SclSession::release_lease() {
  if (lease_id_ == 0) return ok_status();
  auto op = client_.lease_release(metadata_, lease_id_);
  lease_id_ = 0;
  lease_expires_ns_ = 0;
  GDP_ASSIGN_OR_RETURN(client::LeaseOutcome outcome, await(scenario_.sim(), op));
  (void)outcome;
  return ok_status();
}

Result<client::CasOutcome> SclSession::append(BytesView payload) {
  budget_.on_request();
  if (options_.use_lease &&
      (lease_id_ == 0 || lease_expires_ns_ <= scenario_.sim().now().count())) {
    GDP_RETURN_IF_ERROR(acquire_lease());
  }
  for (std::uint32_t attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    // The tip condition is the writer's state *before* this append.
    const std::uint64_t base_seqno = writer_.next_seqno() - 1;
    const Name base_hash = writer_.tip_hash();
    capsule::Record record =
        writer_.append(payload, scenario_.sim().now().count());
    auto op = client_.cond_append(metadata_, record, base_seqno, base_hash,
                                  options_.required_acks, lease_id_);
    GDP_ASSIGN_OR_RETURN(client::CasOutcome outcome, await(scenario_.sim(), op));
    if (outcome.won) {
      ++appends_;
      return outcome;
    }
    // Lost the race: adopt the replica's tip (discarding the losing local
    // record) and retry if the budget still allows it.
    ++conflicts_;
    if (outcome.code == Errc::kLeaseHeld) {
      ++lease_rejects_;
      lease_id_ = 0;  // our lease (if any) is not the one the replica honors
      lease_expires_ns_ = 0;
    }
    GDP_RETURN_IF_ERROR(writer_.rebase(outcome.tip_seqno, outcome.tip_hash));
    if (attempt == options_.max_attempts || !budget_.try_retry()) {
      return make_error(Errc::kConflict,
                        "CAS retry budget exhausted after " +
                            std::to_string(attempt) + " attempts");
    }
    scenario_.settle_for(options_.conflict_backoff);
    if (outcome.code == Errc::kLeaseHeld && options_.use_lease) {
      GDP_RETURN_IF_ERROR(acquire_lease());
    }
  }
  return make_error(Errc::kConflict, "CAS attempts exhausted");
}

client::OpPtr<client::AppendOutcome> SclSession::blind_append(BytesView payload) {
  capsule::Record record =
      writer_.append(payload, scenario_.sim().now().count());
  ++appends_;
  return client_.append_record(metadata_, record, options_.required_acks);
}

}  // namespace gdp::caapi
