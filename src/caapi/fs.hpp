// Filesystem CAAPI (§V-B, §IX).
//
// The structure mirrors the paper's TensorFlow plugin: "this CAAPI
// maintains a top-level directory in a single DataCapsule.  Each filename
// is represented as its own DataCapsule; the top-level directory merely
// maps filenames to DataCapsule-names."  File contents are chunked into
// records; reads are verified range reads reassembled into the original
// bytes.  Because the DataCapsule is the ground truth, integrity carries
// over to the filesystem for free.
//
// Directory records embed the file capsule's serialized metadata (which
// hashes to its name, so it is self-authenticating); any reader that
// trusts the directory capsule can therefore verify file contents
// end-to-end without further key distribution.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "client/client.hpp"
#include "harness/scenario.hpp"

namespace gdp::caapi {

class GdpFilesystem {
 public:
  struct Options {
    std::size_t chunk_bytes = 256 * 1024;
    std::uint32_t required_acks = 1;
  };

  /// Creates a filesystem owned by fresh keys; the directory capsule is
  /// placed on `servers` immediately.
  static Result<GdpFilesystem> create(harness::Scenario& scenario,
                                      client::GdpClient& client,
                                      std::vector<server::CapsuleServer*> servers,
                                      const std::string& label, Options options);
  static Result<GdpFilesystem> create(harness::Scenario& scenario,
                                      client::GdpClient& client,
                                      std::vector<server::CapsuleServer*> servers,
                                      const std::string& label) {
    return create(scenario, client, std::move(servers), label, Options{});
  }

  /// Writes (or overwrites) a file: creates its capsule, streams chunk
  /// records, then commits the mapping into the directory capsule.
  Status write_file(const std::string& filename, BytesView content);

  /// Verified read of the whole file.
  Result<Bytes> read_file(const std::string& filename);

  Status remove(const std::string& filename);
  std::vector<std::string> list() const;
  bool exists(const std::string& filename) const {
    return directory_.contains(filename);
  }

  /// Rebuilds the local directory view from the directory capsule.
  Status refresh();

  const Name& directory_capsule() const { return dir_setup_.metadata.name(); }
  const capsule::Metadata& directory_metadata() const { return dir_setup_.metadata; }

 private:
  struct FileEntry {
    capsule::Metadata metadata;   ///< the file capsule (self-authenticating)
    std::uint64_t chunk_count = 0;
  };

  GdpFilesystem(harness::Scenario& scenario, client::GdpClient& client,
                std::vector<server::CapsuleServer*> servers, Options options,
                harness::CapsuleSetup dir_setup, capsule::Writer dir_writer);

  Status commit_directory_record(bool add, const std::string& filename,
                                 const FileEntry* entry);
  static Result<std::pair<std::string, std::optional<FileEntry>>> parse_directory_record(
      BytesView payload);

  harness::Scenario& scenario_;
  client::GdpClient& client_;
  std::vector<server::CapsuleServer*> servers_;
  Options options_;
  harness::CapsuleSetup dir_setup_;
  capsule::Writer dir_writer_;
  std::map<std::string, FileEntry> directory_;
};

}  // namespace gdp::caapi
