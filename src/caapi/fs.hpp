// CapsuleFS: the multi-writer filesystem CAAPI (§V-B, §VI-A, §IX).
//
// The paper's TensorFlow plugin kept "a top-level directory in a single
// DataCapsule; each filename is represented as its own DataCapsule".
// CapsuleFS keeps that shape but makes the directory capsule
// *multi-writer*: the capsule owner delegates write authority per branch
// via WriterCredentials, every directory mutation is a typed record
// (mkdir / create / rename / unlink / set-attr / chunk-commit) signed by
// the writer's own key and enveloped with its credential, and concurrent
// writers append independently — racing appends land as branches.
//
// Readers replay ALL records (canonical chain + branch records) in one
// deterministic conflict-resolution order — (seqno, writer pubkey,
// record hash) — so every replica and every rerun materializes a
// byte-identical tree: `tree_digest()` is the proof.  Writers land
// records either through the SCL's optimistic compare-and-append
// (kCas: linear history, budgeted retries) or as unconditional branch
// appends (kBlind: zero contention, merged at replay).
//
// File contents stay in per-file strict-single-writer capsules, chunked
// into records; the directory record embeds the file capsule's
// serialized metadata (which hashes to its name, so it is
// self-authenticating) — integrity carries end-to-end with no extra key
// distribution.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "caapi/mount.hpp"
#include "caapi/scl.hpp"
#include "capsule/credential.hpp"
#include "client/client.hpp"
#include "harness/scenario.hpp"

namespace gdp::caapi {

/// One typed directory-capsule mutation.  This is the *inner* payload of
/// a multi-writer envelope (the credential rides ahead of it).
struct DirRecord {
  enum class Type : std::uint8_t {
    kMkdir = 1,        ///< create a directory node at `path`
    kCreate = 2,       ///< bind `path` to a file capsule (metadata + chunks)
    kRename = 3,       ///< move `path` (and its subtree) to `target`
    kUnlink = 4,       ///< remove `path` (and its subtree)
    kSetAttr = 5,      ///< set the free-form attribute on `path`
    kChunkCommit = 6,  ///< commit a new chunk_count for an existing binding
  };

  Type type = Type::kMkdir;
  std::string path;
  std::string target;      ///< kRename destination; kSetAttr value
  Bytes file_metadata;     ///< kCreate/kChunkCommit: serialized capsule::Metadata
  std::uint64_t chunk_count = 0;

  Bytes serialize() const;
  static Result<DirRecord> deserialize(BytesView b);

  friend bool operator==(const DirRecord&, const DirRecord&) = default;
};

class GdpFilesystem {
 public:
  enum class Concurrency : std::uint8_t {
    kCas = 0,    ///< SCL compare-and-append: linear history, budgeted retries
    kBlind = 1,  ///< unconditional branch appends, merged at replay
  };

  /// Deprecated knob bag — kept so `create(...)` shims keep compiling;
  /// new code passes MountOptions through Mount.
  struct Options {
    std::size_t chunk_bytes = 256 * 1024;
    std::uint32_t required_acks = 1;
  };

  struct FileEntry {
    capsule::Metadata metadata;  ///< the file capsule (self-authenticating)
    std::uint64_t chunk_count = 0;
  };

  /// One node of the replayed directory tree.
  struct Node {
    bool is_dir = false;
    std::optional<FileEntry> file;  ///< set iff !is_dir
    std::string attr;               ///< free-form kSetAttr value
  };

  /// Create-new: mints owner + founding-writer keys, places a
  /// kMultiWriter directory capsule on the mount's servers, and
  /// self-issues the founding writer's credential.  Open-existing
  /// (m.creates() == false): attaches read-only; writes fail with
  /// kPermissionDenied until mounted with a credential.
  static Result<GdpFilesystem> mount(const Mount& m);

  /// Open-existing as a credentialed writer: `credential` must be an
  /// owner-signed grant (see grant_writer) for `writer_key`'s public
  /// half.
  static Result<GdpFilesystem> mount(const Mount& m,
                                     capsule::WriterCredential credential,
                                     crypto::PrivateKey writer_key);

  /// Deprecated shims over mount() — the pre-Mount entry points.
  static Result<GdpFilesystem> create(harness::Scenario& scenario,
                                      client::GdpClient& client,
                                      std::vector<server::CapsuleServer*> servers,
                                      const std::string& label, Options options);
  static Result<GdpFilesystem> create(harness::Scenario& scenario,
                                      client::GdpClient& client,
                                      std::vector<server::CapsuleServer*> servers,
                                      const std::string& label) {
    return create(scenario, client, std::move(servers), label, Options{});
  }

  /// Owner-only: delegate write authority over the directory capsule to
  /// another writer key, as a time-bounded branch credential the grantee
  /// passes to mount().
  Result<capsule::WriterCredential> grant_writer(const crypto::PublicKey& writer,
                                                 const std::string& branch) const;

  /// Writes (or overwrites) a file: creates its capsule, streams chunk
  /// records, then commits the binding into the directory capsule.
  Status write_file(const std::string& path, BytesView content);

  /// Verified read of the whole file.  Tip-aware: refreshes the
  /// directory view first (per MountOptions::tip_aware_reads), so a file
  /// committed by another client is readable without refresh().
  Result<Bytes> read_file(const std::string& path);

  Status mkdir(const std::string& path);
  Status rename(const std::string& from, const std::string& to);
  Status set_attr(const std::string& path, const std::string& value);
  Status remove(const std::string& path);

  /// Tip-aware listing / existence check (auto-refresh under
  /// tip_aware_reads; best-effort — serves the last known view if the
  /// refresh cannot reach a replica).
  std::vector<std::string> list();
  bool exists(const std::string& path);

  /// The replayed tree, as last refreshed.
  const std::map<std::string, Node>& tree() const { return tree_; }

  /// Rebuilds the local tree from the directory capsule (canonical chain
  /// + branch records, deterministic merge order).
  Status refresh();

  /// SHA-256 over the canonical serialization of the replayed tree.
  /// Byte-identical across replicas and reruns iff conflict resolution
  /// is deterministic.
  Name tree_digest() const;

  /// Deterministic replay of an arbitrary record set (canonical +
  /// branches, any order; already signature-verified by ingest or the
  /// read path) into a tree digest — used to check replica convergence
  /// server-side without a client in the loop.
  static Result<Name> replay_digest(const capsule::Metadata& metadata,
                                    const std::vector<capsule::Record>& records);

  bool can_write() const { return credential_.has_value(); }
  const Name& directory_capsule() const { return dir_metadata_.name(); }
  const capsule::Metadata& directory_metadata() const { return dir_metadata_; }
  const capsule::WriterCredential& credential() const { return *credential_; }
  SclSession* scl() { return scl_ ? &*scl_ : nullptr; }
  Concurrency concurrency() const { return concurrency_; }
  void set_concurrency(Concurrency c) { concurrency_ = c; }

  static Name tree_digest_of(const std::map<std::string, Node>& tree);

 private:
  GdpFilesystem(const Mount& m, capsule::Metadata dir_metadata);

  Status commit_record(const DirRecord& rec);
  Status refresh_if_tip_aware();
  /// Applies one decoded DirRecord to `tree` (merge-order semantics).
  static void apply(std::map<std::string, Node>& tree, const DirRecord& rec);
  static Status replay(const capsule::Metadata& metadata,
                       std::vector<capsule::Record> records,
                       std::map<std::string, Node>& tree);

  harness::Scenario& scenario_;
  client::GdpClient& client_;
  std::vector<server::CapsuleServer*> servers_;
  MountOptions options_;
  Concurrency concurrency_ = Concurrency::kCas;
  capsule::Metadata dir_metadata_;
  std::unique_ptr<crypto::PrivateKey> owner_key_;  ///< create-mode only
  std::optional<capsule::WriterCredential> credential_;
  std::optional<SclSession> scl_;
  std::map<std::string, Node> tree_;
};

}  // namespace gdp::caapi
