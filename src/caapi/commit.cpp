#include "caapi/commit.hpp"

#include "common/varint.hpp"

namespace gdp::caapi {

using client::await;

CommitService::CommitService(harness::Scenario& scenario,
                             client::GdpClient& service_client,
                             harness::CapsuleSetup setup,
                             std::uint32_t required_acks)
    : scenario_(scenario),
      client_(service_client),
      setup_(std::move(setup)),
      writer_(setup_.make_writer()),
      required_acks_(required_acks) {
  client_.set_app_handler(
      [this](const Name& from, const wire::Pdu& pdu) { return on_app_pdu(from, pdu); });
}

Result<std::unique_ptr<CommitService>> CommitService::mount(const Mount& m) {
  if (!m.creates()) {
    return make_error(Errc::kInvalidArgument,
                      "a commit service creates its capsule; producers talk "
                      "to it by name, not by mounting");
  }
  harness::CapsuleSetup setup =
      harness::make_capsule(m.scenario().key_rng(), "commit:" + m.label());
  GDP_RETURN_IF_ERROR(
      harness::place_capsule(m.scenario(), setup, m.client(), m.servers()));
  return std::make_unique<CommitService>(m.scenario(), m.client(),
                                         std::move(setup),
                                         m.options().required_acks);
}

bool CommitService::on_app_pdu(const Name& /*from*/, const wire::Pdu& pdu) {
  if (pdu.type != wire::MsgType::kProposal) return false;
  // Serialize: stamp the proposer, append in arrival order.
  Bytes record_payload;
  append(record_payload, pdu.src.view());
  put_length_prefixed(record_payload, pdu.payload);

  const Name proposer = pdu.src;
  const std::uint64_t flow = pdu.flow_id;
  auto op = client_.append(writer_, record_payload, required_acks_);

  // Answer once the append is durable; poll the op from the event loop.
  poll_append(std::move(op), proposer, flow);
  return true;
}

void CommitService::poll_append(client::OpPtr<client::AppendOutcome> op,
                                Name proposer, std::uint64_t flow) {
  if (!op->done) {
    // Reschedule with a fresh closure each round: a self-referential
    // shared callback would be a shared_ptr cycle and leak.
    scenario_.sim().schedule(from_millis(1),
                             [this, op = std::move(op), proposer, flow] {
                               poll_append(std::move(op), proposer, flow);
                             });
    return;
  }
  Bytes ack;
  put_fixed64(ack, flow);
  const bool ok = op->outcome->ok();
  ack.push_back(ok ? 1 : 0);
  put_fixed64(ack, ok ? (*op->outcome)->seqno : 0);
  if (ok) ++committed_;
  client_.send_app_pdu(proposer, wire::MsgType::kProposalAck, std::move(ack), flow);
}

Result<std::pair<Name, Bytes>> CommitService::decode_committed(
    BytesView record_payload) {
  ByteReader r(record_payload);
  auto proposer = r.get_bytes(Name::kSize);
  auto payload = r.get_length_prefixed();
  if (!proposer || !payload || !r.empty()) {
    return make_error(Errc::kCorruptData, "malformed committed record");
  }
  return std::make_pair(*Name::from_bytes(*proposer), std::move(*payload));
}

Proposer::Proposer(harness::Scenario& scenario, client::GdpClient& producer)
    : scenario_(scenario), client_(producer) {
  client_.set_app_handler(
      [this](const Name& from, const wire::Pdu& pdu) { return on_app_pdu(from, pdu); });
}

client::OpPtr<std::uint64_t> Proposer::propose(const Name& service,
                                               BytesView payload) {
  auto op = std::make_shared<client::Op<std::uint64_t>>();
  const std::uint64_t flow = next_flow_++;
  pending_[flow] = op;
  scenario_.sim().schedule(from_seconds(30), [this, flow, op] {
    if (pending_.erase(flow) > 0) {
      op->resolve(make_error(Errc::kUnavailable, "proposal timed out"));
    }
  });
  client_.send_app_pdu(service, wire::MsgType::kProposal,
                       Bytes(payload.begin(), payload.end()), flow);
  return op;
}

bool Proposer::on_app_pdu(const Name& /*from*/, const wire::Pdu& pdu) {
  if (pdu.type != wire::MsgType::kProposalAck) return false;
  ByteReader r(pdu.payload);
  auto flow = r.get_fixed64();
  auto ok_byte = r.get_bytes(1);
  auto seqno = r.get_fixed64();
  if (!flow || !ok_byte || !seqno) return true;  // malformed ack: drop
  auto it = pending_.find(*flow);
  if (it == pending_.end()) return true;  // late or replayed
  auto op = it->second;
  pending_.erase(it);
  if ((*ok_byte)[0] != 0) {
    op->resolve(*seqno);
  } else {
    op->resolve(make_error(Errc::kUnavailable, "commit service rejected proposal"));
  }
  return true;
}

}  // namespace gdp::caapi
