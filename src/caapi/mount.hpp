// Shared CAAPI mount surface.
//
// Every CAAPI used to grow its own `create(scenario, client, servers,
// label, Options)` static with its own bag of knobs; clients had five
// slightly different entry points for what the paper describes as one
// operation — attaching an application-level view to a DataCapsule.  A
// Mount names the attachment once: the transport context (scenario,
// client, replica set), whether the capsule is being created fresh or an
// existing one is being opened, and the cross-CAAPI policy knobs
// (durability acks, sync policy, chunking).  Each CAAPI exposes
// `mount(const Mount&)`; the old `create(...)` statics survive as thin
// deprecated shims.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "caapi/scl.hpp"
#include "client/client.hpp"
#include "harness/scenario.hpp"

namespace gdp::caapi {

struct MountOptions {
  /// §VI-B durability mode for every write issued through the mount.
  std::uint32_t required_acks = 1;
  /// Sync policy: when true, reads that answer from a locally cached view
  /// (fs exists/list/read_file, …) refresh from the capsule tip first, so
  /// one client observes another client's committed writes without an
  /// explicit refresh() call.  When false, reads serve the cached view
  /// (the pre-mount behavior).
  bool tip_aware_reads = true;
  /// fs: file-content chunking.
  std::size_t chunk_bytes = 256 * 1024;
  /// kv: ops between checkpoint snapshots.
  std::uint64_t checkpoint_interval = 16;
  /// Concurrency knobs for multi-writer CAAPIs (fs directory capsule).
  SclSession::Options scl;
};

/// One attachment of a CAAPI to a capsule: create-new vs open-existing
/// plus everything needed to reach the replicas.
class Mount {
 public:
  /// Create-new: the CAAPI mints fresh owner/writer keys and places its
  /// capsule(s) on `servers`.
  static Mount create(harness::Scenario& scenario, client::GdpClient& client,
                      std::vector<server::CapsuleServer*> servers,
                      std::string label, MountOptions options = {}) {
    Mount m(scenario, client, std::move(servers), options);
    m.label_ = std::move(label);
    return m;
  }

  /// Open-existing: attach to an already placed capsule by its
  /// (self-authenticating) metadata.  Read-side CAAPIs need nothing else;
  /// write-side CAAPIs additionally take credentials/keys in their
  /// mount() overloads.
  static Mount open(harness::Scenario& scenario, client::GdpClient& client,
                    std::vector<server::CapsuleServer*> servers,
                    capsule::Metadata existing, MountOptions options = {}) {
    Mount m(scenario, client, std::move(servers), options);
    m.existing_ = std::move(existing);
    return m;
  }

  bool creates() const { return !existing_.has_value(); }

  harness::Scenario& scenario() const { return *scenario_; }
  client::GdpClient& client() const { return *client_; }
  const std::vector<server::CapsuleServer*>& servers() const { return servers_; }
  const std::string& label() const { return label_; }
  const MountOptions& options() const { return options_; }
  /// Only meaningful when !creates().
  const capsule::Metadata& existing() const { return *existing_; }

 private:
  Mount(harness::Scenario& scenario, client::GdpClient& client,
        std::vector<server::CapsuleServer*> servers, MountOptions options)
      : scenario_(&scenario),
        client_(&client),
        servers_(std::move(servers)),
        options_(options) {}

  harness::Scenario* scenario_;
  client::GdpClient* client_;
  std::vector<server::CapsuleServer*> servers_;
  std::string label_;
  MountOptions options_;
  std::optional<capsule::Metadata> existing_;
};

}  // namespace gdp::caapi
