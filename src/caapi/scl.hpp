// Shared Concurrency Layer (SCL) — §VI-A brought up to CapsuleFS grade.
//
// The paper's commit service serializes writers through one proxy; the
// SCL instead lets every writer talk to replicas directly and resolves
// races optimistically, the way the FaultSee/Paxos-less edge literature
// (and the CapsuleFS follow-on work) does it:
//
//  * *Optimistic compare-and-append*: an append is conditioned on the
//    replica's canonical tip still being (seqno, hash) the writer last
//    saw.  A lost race is not an error — the replica nacks with its
//    current tip, the writer rebases its chain onto it and retries under
//    a token-bucket retry budget (loadmgmt semantics: sustained retries
//    can never exceed a fraction of sustained fresh appends).
//
//  * *Capsule-tip leases*: time-bounded, replica-signed, renewable
//    advisory locks on a capsule's tip.  A lease holder's CAS appends
//    skip the contention window entirely; non-holders are nacked with
//    kLeaseHeld and back off.  Leases are per-replica hints — safety
//    always comes from the CAS tip condition, never from the lease.
//
// Every CAAPI that writes can sit on an SclSession; CapsuleFS uses one
// per mounted directory capsule.
#pragma once

#include "client/client.hpp"
#include "harness/scenario.hpp"
#include "loadmgmt/retry_budget.hpp"

namespace gdp::caapi {

/// Concurrency knobs for an SclSession.  (Namespace-scope so it can be a
/// brace-defaulted argument inside the class definition.)
struct SclOptions {
  std::uint32_t required_acks = 1;
  /// Hard cap on CAS attempts per append (the budget usually binds
  /// first; this bounds pathological livelock).
  std::uint32_t max_attempts = 16;
  /// Simulated-time backoff between lost races, so the retry does not
  /// collide with the same racing writers in the same instant.
  Duration conflict_backoff = from_micros(200);
  /// Acquire (and keep renewing) a tip lease before appending.
  bool use_lease = false;
  Duration lease_duration = from_millis(500);
  loadmgmt::RetryBudgetConfig retry_budget;
};

/// One writer's concurrency session against one capsule: a local chain
/// Writer plus the CAS/lease state needed to land appends under
/// contention.
class SclSession {
 public:
  using Options = SclOptions;

  SclSession(harness::Scenario& scenario, client::GdpClient& client,
             capsule::Metadata metadata, capsule::Writer writer,
             Options options = {});

  /// Optimistic compare-and-append of one record carrying `payload`
  /// (already MW-enveloped by the caller when the capsule is
  /// kMultiWriter).  Blocks (in simulated time) until the append wins,
  /// the retry budget runs dry, or max_attempts is reached.
  Result<client::CasOutcome> append(BytesView payload);

  /// Unconditional branch append (multi-writer capsules): the record
  /// chains onto this writer's own previous record, never contends for
  /// the canonical tip, and lands as a branch that deterministic replay
  /// merges.  Returns the in-flight op; callers batch and await.
  client::OpPtr<client::AppendOutcome> blind_append(BytesView payload);

  /// Acquires (or refreshes) the tip lease; on grant the writer is
  /// rebased onto the replica tip carried in the grant, so acquisition
  /// doubles as a tip sync.  Denial is not an error (granted stays
  /// false; someone else holds it).
  Result<client::LeaseOutcome> acquire_lease();
  Status release_lease();
  bool holds_lease() const { return lease_id_ != 0; }
  std::uint64_t lease_id() const { return lease_id_; }

  /// Rebase the local writer onto an externally learned tip.
  Status rebase(std::uint64_t tip_seqno, const Name& tip_hash) {
    return writer_.rebase(tip_seqno, tip_hash);
  }

  capsule::Writer& writer() { return writer_; }
  const capsule::Metadata& metadata() const { return metadata_; }

  std::uint64_t appends() const { return appends_; }
  std::uint64_t conflicts() const { return conflicts_; }
  std::uint64_t lease_rejects() const { return lease_rejects_; }
  const loadmgmt::RetryBudget& budget() const { return budget_; }

 private:
  harness::Scenario& scenario_;
  client::GdpClient& client_;
  capsule::Metadata metadata_;
  capsule::Writer writer_;
  Options options_;
  loadmgmt::RetryBudget budget_;
  std::uint64_t lease_id_ = 0;
  std::int64_t lease_expires_ns_ = 0;
  std::uint64_t appends_ = 0;
  std::uint64_t conflicts_ = 0;
  std::uint64_t lease_rejects_ = 0;
};

}  // namespace gdp::caapi
