// Multi-writer CapsuleFS workload driver.
//
// The acceptance workload for the SCL/CapsuleFS layer: N credentialed
// branch writers (multiplexed over a handful of network clients) hammer
// ONE shared directory capsule — through link flaps injected by the
// caller — and every replica must converge to a byte-identical tree
// digest, with no coordinator anywhere in the write path.
//
// Two write shapes, matching GdpFilesystem::Concurrency:
//  * kCas — every record lands through SCL compare-and-append; history
//    is linear, losers rebase and retry round by round.
//  * kBlind — every writer appends to its own branch unconditionally;
//    replicas merge branches at replay.  At-least-once: a timed-out
//    append is resent, which is safe because the record is content-
//    addressed (a duplicate is the same record).
#pragma once

#include <functional>

#include "caapi/fs.hpp"

namespace gdp::caapi {

struct FsLoadOptions {
  std::size_t writers = 128;        ///< credentialed branch writers
  std::size_t ops_per_writer = 3;   ///< directory records each writer lands
  GdpFilesystem::Concurrency concurrency = GdpFilesystem::Concurrency::kBlind;
  std::uint32_t required_acks = 1;
  /// Issue/settle rounds before giving up on stragglers.
  std::uint32_t max_rounds = 64;
  /// Anti-entropy window before the convergence check.
  Duration final_settle = from_seconds(10);
  /// Chaos hook, called once per issue round — the test injects link
  /// flaps here so the driver stays chaos-agnostic.
  std::function<void(std::size_t round)> on_round;
};

struct FsLoadReport {
  std::uint64_t committed = 0;  ///< records acknowledged by a replica
  std::uint64_t conflicts = 0;  ///< CAS races lost (kCas only)
  std::uint64_t failures = 0;   ///< ops abandoned after max_rounds
  Name client_digest;           ///< owner's read-path tree digest
  std::vector<Name> replica_digests;  ///< per-server replayed digests
  bool converged = false;  ///< all replica digests identical & non-empty set
};

/// Runs the workload against `owner`'s directory capsule.  `clients` are
/// the network endpoints the writers multiplex over (writer i uses
/// clients[i % clients.size()]).
Result<FsLoadReport> run_fs_load(harness::Scenario& scenario, GdpFilesystem& owner,
                                 std::vector<server::CapsuleServer*> servers,
                                 std::vector<client::GdpClient*> clients,
                                 FsLoadOptions options);

}  // namespace gdp::caapi
