#include "caapi/aggregate.hpp"

#include "common/varint.hpp"

namespace gdp::caapi {

Aggregator::Aggregator(harness::Scenario& scenario, client::GdpClient& client,
                       harness::CapsuleSetup output_setup)
    : scenario_(scenario),
      client_(client),
      setup_(std::move(output_setup)),
      writer_(setup_.make_writer()) {}

Result<bool> Aggregator::add_source(const capsule::Metadata& source,
                                    const trust::Cert& sub_cert) {
  const Name source_name = source.name();
  auto op = client_.subscribe(
      source, sub_cert,
      [this, source_name](const capsule::Record& rec, const capsule::Heartbeat&) {
        Bytes payload;
        append(payload, source_name.view());
        put_varint(payload, rec.header.seqno);
        put_length_prefixed(payload, rec.payload);
        ++events_;
        // Fire-and-forget append; durability is the infrastructure's job.
        client_.append(writer_, payload, 1);
      });
  return client::await(scenario_.sim(), op);
}

Result<std::tuple<Name, std::uint64_t, Bytes>> Aggregator::decode(BytesView payload) {
  ByteReader r(payload);
  auto source = r.get_bytes(Name::kSize);
  auto seqno = r.get_varint();
  auto body = r.get_length_prefixed();
  if (!source || !seqno || !body || !r.empty()) {
    return make_error(Errc::kCorruptData, "malformed aggregated record");
  }
  return std::make_tuple(*Name::from_bytes(*source), *seqno, std::move(*body));
}

}  // namespace gdp::caapi
