#include "caapi/fs.hpp"

#include "common/varint.hpp"

namespace gdp::caapi {

using client::await;

namespace {
constexpr std::uint8_t kDirAdd = 1;
constexpr std::uint8_t kDirRemove = 2;
}  // namespace

GdpFilesystem::GdpFilesystem(harness::Scenario& scenario, client::GdpClient& client,
                             std::vector<server::CapsuleServer*> servers,
                             Options options, harness::CapsuleSetup dir_setup,
                             capsule::Writer dir_writer)
    : scenario_(scenario),
      client_(client),
      servers_(std::move(servers)),
      options_(options),
      dir_setup_(std::move(dir_setup)),
      dir_writer_(std::move(dir_writer)) {}

Result<GdpFilesystem> GdpFilesystem::create(harness::Scenario& scenario,
                                            client::GdpClient& client,
                                            std::vector<server::CapsuleServer*> servers,
                                            const std::string& label,
                                            Options options) {
  if (servers.empty()) {
    return make_error(Errc::kInvalidArgument, "filesystem needs at least one server");
  }
  harness::CapsuleSetup dir_setup =
      harness::make_capsule(scenario.key_rng(), "fsdir:" + label);
  GDP_RETURN_IF_ERROR(harness::place_capsule(scenario, dir_setup, client, servers));
  capsule::Writer dir_writer = dir_setup.make_writer();
  return GdpFilesystem(scenario, client, std::move(servers), options,
                       std::move(dir_setup), std::move(dir_writer));
}

Status GdpFilesystem::commit_directory_record(bool add, const std::string& filename,
                                              const FileEntry* entry) {
  Bytes payload{add ? kDirAdd : kDirRemove};
  put_length_prefixed(payload, to_bytes(filename));
  if (add) {
    put_length_prefixed(payload, entry->metadata.serialize());
    put_varint(payload, entry->chunk_count);
  }
  auto op = client_.append(dir_writer_, payload, options_.required_acks);
  GDP_ASSIGN_OR_RETURN(client::AppendOutcome outcome, await(scenario_.sim(), op));
  (void)outcome;
  return ok_status();
}

Result<std::pair<std::string, std::optional<GdpFilesystem::FileEntry>>>
GdpFilesystem::parse_directory_record(BytesView payload) {
  if (payload.empty()) return make_error(Errc::kCorruptData, "empty directory record");
  ByteReader r(payload.subspan(1));
  auto filename = r.get_length_prefixed();
  if (!filename) return make_error(Errc::kCorruptData, "truncated directory record");
  if (payload[0] == kDirRemove) {
    return std::make_pair(to_string(*filename), std::optional<FileEntry>{});
  }
  if (payload[0] != kDirAdd) {
    return make_error(Errc::kCorruptData, "unknown directory record tag");
  }
  auto metadata_bytes = r.get_length_prefixed();
  auto chunks = r.get_varint();
  if (!metadata_bytes || !chunks) {
    return make_error(Errc::kCorruptData, "truncated directory add record");
  }
  GDP_ASSIGN_OR_RETURN(capsule::Metadata metadata,
                       capsule::Metadata::deserialize(*metadata_bytes));
  return std::make_pair(to_string(*filename),
                        std::optional<FileEntry>(FileEntry{std::move(metadata),
                                                           *chunks}));
}

Status GdpFilesystem::write_file(const std::string& filename, BytesView content) {
  // Each file is its own capsule; overwrites allocate a fresh one (the
  // old history remains immutable and provable — natural versioning).
  harness::CapsuleSetup file_setup = harness::make_capsule(
      scenario_.key_rng(), "file:" + filename,
      capsule::WriterMode::kStrictSingleWriter, "chain");
  GDP_RETURN_IF_ERROR(
      harness::place_capsule(scenario_, file_setup, client_, servers_));

  capsule::Writer writer = file_setup.make_writer();
  std::vector<client::OpPtr<client::AppendOutcome>> ops;
  std::uint64_t chunk_count = 0;
  for (std::size_t off = 0; off < content.size() || content.empty();
       off += options_.chunk_bytes) {
    std::size_t n = std::min(options_.chunk_bytes, content.size() - off);
    ops.push_back(client_.append(writer, content.subspan(off, n),
                                 options_.required_acks));
    ++chunk_count;
    if (content.empty()) break;
  }
  scenario_.settle();
  for (auto& op : ops) {
    GDP_ASSIGN_OR_RETURN(client::AppendOutcome outcome, await(scenario_.sim(), op));
    (void)outcome;
  }

  FileEntry entry{file_setup.metadata, chunk_count};
  GDP_RETURN_IF_ERROR(commit_directory_record(true, filename, &entry));
  directory_.insert_or_assign(filename, std::move(entry));
  return ok_status();
}

Result<Bytes> GdpFilesystem::read_file(const std::string& filename) {
  auto it = directory_.find(filename);
  if (it == directory_.end()) {
    return make_error(Errc::kNotFound, "no such file: " + filename);
  }
  const FileEntry& entry = it->second;
  auto op = client_.read(entry.metadata, 1, entry.chunk_count);
  GDP_ASSIGN_OR_RETURN(client::ReadOutcome outcome, await(scenario_.sim(), op));
  Bytes content;
  for (const capsule::Record& rec : outcome.records) {
    append(content, rec.payload);
  }
  return content;
}

Status GdpFilesystem::remove(const std::string& filename) {
  auto it = directory_.find(filename);
  if (it == directory_.end()) {
    return make_error(Errc::kNotFound, "no such file: " + filename);
  }
  GDP_RETURN_IF_ERROR(commit_directory_record(false, filename, nullptr));
  directory_.erase(it);
  return ok_status();
}

std::vector<std::string> GdpFilesystem::list() const {
  std::vector<std::string> out;
  out.reserve(directory_.size());
  for (const auto& [name, _] : directory_) out.push_back(name);
  return out;
}

Status GdpFilesystem::refresh() {
  auto op = client_.read(dir_setup_.metadata, 1, 0);
  auto outcome = await(scenario_.sim(), op);
  if (!outcome.ok()) {
    if (outcome.code() == Errc::kNotFound) {
      directory_.clear();  // empty directory capsule
      return ok_status();
    }
    return outcome.error();
  }
  directory_.clear();
  for (const capsule::Record& rec : outcome->records) {
    GDP_ASSIGN_OR_RETURN(auto parsed, parse_directory_record(rec.payload));
    if (parsed.second.has_value()) {
      directory_.insert_or_assign(parsed.first, std::move(*parsed.second));
    } else {
      directory_.erase(parsed.first);
    }
  }
  return ok_status();
}

}  // namespace gdp::caapi
