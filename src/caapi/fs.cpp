#include "caapi/fs.hpp"

#include <algorithm>
#include <limits>

#include "capsule/strategy.hpp"
#include "common/varint.hpp"
#include "crypto/sha256.hpp"

namespace gdp::caapi {

using client::await;

namespace {
/// Owner/founding-writer credentials never expire within a simulation.
constexpr std::int64_t kForeverNs = std::numeric_limits<std::int64_t>::max() / 2;
}  // namespace

// ---- DirRecord codec ------------------------------------------------------------

Bytes DirRecord::serialize() const {
  Bytes out{static_cast<std::uint8_t>(type)};
  put_length_prefixed(out, to_bytes(path));
  put_length_prefixed(out, to_bytes(target));
  put_length_prefixed(out, file_metadata);
  put_varint(out, chunk_count);
  return out;
}

Result<DirRecord> DirRecord::deserialize(BytesView b) {
  if (b.empty()) return make_error(Errc::kCorruptData, "empty directory record");
  const std::uint8_t t = b[0];
  if (t < static_cast<std::uint8_t>(Type::kMkdir) ||
      t > static_cast<std::uint8_t>(Type::kChunkCommit)) {
    return make_error(Errc::kCorruptData, "unknown directory record type");
  }
  ByteReader r(b.subspan(1));
  auto path = r.get_length_prefixed();
  auto target = r.get_length_prefixed();
  auto metadata = r.get_length_prefixed();
  auto chunks = r.get_varint();
  if (!path || !target || !metadata || !chunks) {
    return make_error(Errc::kCorruptData, "truncated directory record");
  }
  if (!r.empty()) {
    return make_error(Errc::kCorruptData, "trailing bytes in directory record");
  }
  DirRecord rec;
  rec.type = static_cast<Type>(t);
  rec.path = to_string(*path);
  rec.target = to_string(*target);
  rec.file_metadata = std::move(*metadata);
  rec.chunk_count = *chunks;
  return rec;
}

// ---- Mounting -------------------------------------------------------------------

GdpFilesystem::GdpFilesystem(const Mount& m, capsule::Metadata dir_metadata)
    : scenario_(m.scenario()),
      client_(m.client()),
      servers_(m.servers()),
      options_(m.options()),
      dir_metadata_(std::move(dir_metadata)) {}

Result<GdpFilesystem> GdpFilesystem::mount(const Mount& m) {
  if (m.servers().empty()) {
    return make_error(Errc::kInvalidArgument, "filesystem needs at least one server");
  }
  if (!m.creates()) {
    // Open-existing without a credential: read-only attachment.
    GdpFilesystem fs(m, m.existing());
    (void)fs.refresh();  // best effort; an empty/unreachable dir is still a mount
    return fs;
  }
  harness::CapsuleSetup setup =
      harness::make_capsule(m.scenario().key_rng(), "fsdir:" + m.label(),
                            capsule::WriterMode::kMultiWriter, "chain");
  GDP_RETURN_IF_ERROR(
      harness::place_capsule(m.scenario(), setup, m.client(), m.servers()));
  GdpFilesystem fs(m, setup.metadata);
  // The founding writer is credentialed exactly like any later grantee —
  // there is no privileged in-band writer in a multi-writer capsule.
  fs.credential_ = capsule::make_writer_credential(
      *setup.owner_key, setup.metadata.name(), setup.writer_key->public_key(),
      "owner", 0, kForeverNs);
  SclSession::Options scl = m.options().scl;
  scl.required_acks = m.options().required_acks;
  fs.scl_.emplace(m.scenario(), m.client(), setup.metadata, setup.make_writer(),
                  scl);
  fs.owner_key_ = std::move(setup.owner_key);
  return fs;
}

Result<GdpFilesystem> GdpFilesystem::mount(const Mount& m,
                                           capsule::WriterCredential credential,
                                           crypto::PrivateKey writer_key) {
  if (m.creates()) {
    return make_error(Errc::kInvalidArgument,
                      "credentialed mount requires an existing directory capsule");
  }
  if (credential.capsule != m.existing().name()) {
    return make_error(Errc::kInvalidArgument,
                      "credential is for a different capsule");
  }
  GdpFilesystem fs(m, m.existing());
  capsule::Writer writer(m.existing(), writer_key,
                         capsule::strategy_from_id("chain"));
  SclSession::Options scl = m.options().scl;
  scl.required_acks = m.options().required_acks;
  fs.scl_.emplace(m.scenario(), m.client(), m.existing(), std::move(writer), scl);
  fs.credential_ = std::move(credential);
  (void)fs.refresh();
  return fs;
}

Result<GdpFilesystem> GdpFilesystem::create(harness::Scenario& scenario,
                                            client::GdpClient& client,
                                            std::vector<server::CapsuleServer*> servers,
                                            const std::string& label,
                                            Options options) {
  MountOptions mo;
  mo.chunk_bytes = options.chunk_bytes;
  mo.required_acks = options.required_acks;
  return mount(Mount::create(scenario, client, std::move(servers), label, mo));
}

Result<capsule::WriterCredential> GdpFilesystem::grant_writer(
    const crypto::PublicKey& writer, const std::string& branch) const {
  if (!owner_key_) {
    return make_error(Errc::kPermissionDenied,
                      "only the owning mount can grant writer credentials");
  }
  return capsule::make_writer_credential(*owner_key_, dir_metadata_.name(),
                                         writer, branch, 0, kForeverNs);
}

// ---- Deterministic replay -------------------------------------------------------

void GdpFilesystem::apply(std::map<std::string, Node>& tree, const DirRecord& rec) {
  switch (rec.type) {
    case DirRecord::Type::kMkdir: {
      Node dir;
      dir.is_dir = true;
      tree.emplace(rec.path, std::move(dir));  // no-op if the path exists
      break;
    }
    case DirRecord::Type::kCreate: {
      auto metadata = capsule::Metadata::deserialize(rec.file_metadata);
      if (!metadata.ok()) break;  // skip, deterministically, on every replica
      Node file;
      file.file = FileEntry{std::move(metadata).value(), rec.chunk_count};
      tree.insert_or_assign(rec.path, std::move(file));
      break;
    }
    case DirRecord::Type::kChunkCommit: {
      auto it = tree.find(rec.path);
      if (it != tree.end() && it->second.file.has_value()) {
        it->second.file->chunk_count = rec.chunk_count;
      } else if (!rec.file_metadata.empty()) {
        auto metadata = capsule::Metadata::deserialize(rec.file_metadata);
        if (!metadata.ok()) break;
        Node file;
        file.file = FileEntry{std::move(metadata).value(), rec.chunk_count};
        tree.insert_or_assign(rec.path, std::move(file));
      }
      break;
    }
    case DirRecord::Type::kRename: {
      if (rec.target.empty() || rec.path == rec.target) break;
      // Move the node and its whole subtree.
      const std::string prefix = rec.path + "/";
      std::vector<std::pair<std::string, Node>> moved;
      for (auto it = tree.lower_bound(rec.path); it != tree.end();) {
        if (it->first != rec.path &&
            it->first.compare(0, prefix.size(), prefix) != 0) {
          break;
        }
        std::string dest = rec.target + it->first.substr(rec.path.size());
        moved.emplace_back(std::move(dest), std::move(it->second));
        it = tree.erase(it);
      }
      for (auto& [dest, node] : moved) {
        tree.insert_or_assign(std::move(dest), std::move(node));
      }
      break;
    }
    case DirRecord::Type::kUnlink: {
      const std::string prefix = rec.path + "/";
      for (auto it = tree.lower_bound(rec.path); it != tree.end();) {
        if (it->first != rec.path &&
            it->first.compare(0, prefix.size(), prefix) != 0) {
          break;
        }
        it = tree.erase(it);
      }
      break;
    }
    case DirRecord::Type::kSetAttr: {
      auto it = tree.find(rec.path);
      if (it != tree.end()) it->second.attr = rec.target;
      break;
    }
  }
}

Status GdpFilesystem::replay(const capsule::Metadata& metadata,
                             std::vector<capsule::Record> records,
                             std::map<std::string, Node>& tree) {
  const bool multi_writer =
      metadata.mode() == capsule::WriterMode::kMultiWriter;
  // Conflict-resolution order: (seqno, writer pubkey, record hash).  The
  // sort key depends only on record contents, so replicas that hold the
  // same record *set* — in any arrival order — replay byte-identically.
  struct Keyed {
    std::uint64_t seqno;
    Bytes writer_pubkey;
    Name hash;
    DirRecord rec;
  };
  std::vector<Keyed> keyed;
  keyed.reserve(records.size());
  for (capsule::Record& record : records) {
    BytesView inner = record.payload;
    Bytes writer_pubkey;
    if (multi_writer) {
      auto envelope = capsule::open_mw_payload(record.payload);
      if (!envelope.ok()) continue;  // deterministic skip of malformed envelopes
      writer_pubkey = envelope->credential.writer_pubkey;
      auto rec = DirRecord::deserialize(envelope->inner);
      if (!rec.ok()) continue;
      keyed.push_back(Keyed{record.header.seqno, std::move(writer_pubkey),
                            record.hash(), std::move(rec).value()});
      continue;
    }
    auto rec = DirRecord::deserialize(inner);
    if (!rec.ok()) continue;
    keyed.push_back(
        Keyed{record.header.seqno, {}, record.hash(), std::move(rec).value()});
  }
  std::sort(keyed.begin(), keyed.end(), [](const Keyed& a, const Keyed& b) {
    if (a.seqno != b.seqno) return a.seqno < b.seqno;
    if (a.writer_pubkey != b.writer_pubkey) return a.writer_pubkey < b.writer_pubkey;
    return a.hash < b.hash;
  });
  // Duplicate records (same hash via canonical + branch overlap) must not
  // replay twice for types where reapplication is not idempotent.
  const Name* last_hash = nullptr;
  for (const Keyed& k : keyed) {
    if (last_hash && *last_hash == k.hash) continue;
    apply(tree, k.rec);
    last_hash = &k.hash;
  }
  return ok_status();
}

Name GdpFilesystem::tree_digest_of(const std::map<std::string, Node>& tree) {
  Bytes buf;
  for (const auto& [path, node] : tree) {
    put_length_prefixed(buf, to_bytes(path));
    buf.push_back(node.is_dir ? 1 : 0);
    put_length_prefixed(buf, to_bytes(node.attr));
    buf.push_back(node.file.has_value() ? 1 : 0);
    if (node.file.has_value()) {
      put_length_prefixed(buf, node.file->metadata.serialize());
      put_varint(buf, node.file->chunk_count);
    }
  }
  return crypto::digest_to_name(crypto::sha256(buf));
}

Name GdpFilesystem::tree_digest() const { return tree_digest_of(tree_); }

Result<Name> GdpFilesystem::replay_digest(
    const capsule::Metadata& metadata,
    const std::vector<capsule::Record>& records) {
  std::map<std::string, Node> tree;
  GDP_RETURN_IF_ERROR(replay(metadata, records, tree));
  return tree_digest_of(tree);
}

Status GdpFilesystem::refresh() {
  auto op = client_.read(dir_metadata_, 1, 0);
  auto outcome = await(scenario_.sim(), op);
  if (!outcome.ok()) {
    if (outcome.code() == Errc::kNotFound) {
      tree_.clear();  // empty directory capsule
      return ok_status();
    }
    return outcome.error();
  }
  std::vector<capsule::Record> records = std::move(outcome->records);
  records.insert(records.end(),
                 std::make_move_iterator(outcome->branch_records.begin()),
                 std::make_move_iterator(outcome->branch_records.end()));
  std::map<std::string, Node> tree;
  GDP_RETURN_IF_ERROR(replay(dir_metadata_, std::move(records), tree));
  tree_ = std::move(tree);
  return ok_status();
}

Status GdpFilesystem::refresh_if_tip_aware() {
  if (!options_.tip_aware_reads) return ok_status();
  return refresh();
}

// ---- Mutations ------------------------------------------------------------------

Status GdpFilesystem::commit_record(const DirRecord& rec) {
  if (!credential_ || !scl_) {
    return make_error(Errc::kPermissionDenied,
                      "read-only mount: no writer credential");
  }
  Bytes envelope = capsule::wrap_mw_payload(*credential_, rec.serialize());
  if (concurrency_ == Concurrency::kCas) {
    GDP_ASSIGN_OR_RETURN(client::CasOutcome outcome, scl_->append(envelope));
    (void)outcome;
    return ok_status();
  }
  auto op = scl_->blind_append(envelope);
  GDP_ASSIGN_OR_RETURN(client::AppendOutcome outcome, await(scenario_.sim(), op));
  (void)outcome;
  return ok_status();
}

Status GdpFilesystem::write_file(const std::string& path, BytesView content) {
  // Each file is its own capsule; overwrites allocate a fresh one (the
  // old history remains immutable and provable — natural versioning).
  harness::CapsuleSetup file_setup = harness::make_capsule(
      scenario_.key_rng(), "file:" + path,
      capsule::WriterMode::kStrictSingleWriter, "chain");
  GDP_RETURN_IF_ERROR(
      harness::place_capsule(scenario_, file_setup, client_, servers_));

  capsule::Writer writer = file_setup.make_writer();
  std::vector<client::OpPtr<client::AppendOutcome>> ops;
  std::uint64_t chunk_count = 0;
  for (std::size_t off = 0; off < content.size() || content.empty();
       off += options_.chunk_bytes) {
    std::size_t n = std::min(options_.chunk_bytes, content.size() - off);
    ops.push_back(client_.append(writer, content.subspan(off, n),
                                 options_.required_acks));
    ++chunk_count;
    if (content.empty()) break;
  }
  scenario_.settle();
  for (auto& op : ops) {
    GDP_ASSIGN_OR_RETURN(client::AppendOutcome outcome, await(scenario_.sim(), op));
    (void)outcome;
  }

  DirRecord rec;
  rec.type = DirRecord::Type::kCreate;
  rec.path = path;
  rec.file_metadata = file_setup.metadata.serialize();
  rec.chunk_count = chunk_count;
  GDP_RETURN_IF_ERROR(commit_record(rec));
  Node node;
  node.file = FileEntry{file_setup.metadata, chunk_count};
  tree_.insert_or_assign(path, std::move(node));
  return ok_status();
}

Result<Bytes> GdpFilesystem::read_file(const std::string& path) {
  GDP_RETURN_IF_ERROR(refresh_if_tip_aware());
  auto it = tree_.find(path);
  if (it == tree_.end() || !it->second.file.has_value()) {
    return make_error(Errc::kNotFound, "no such file: " + path);
  }
  const FileEntry& entry = *it->second.file;
  if (entry.chunk_count == 0) return Bytes{};
  auto op = client_.read(entry.metadata, 1, entry.chunk_count);
  GDP_ASSIGN_OR_RETURN(client::ReadOutcome outcome, await(scenario_.sim(), op));
  Bytes content;
  for (const capsule::Record& rec : outcome.records) {
    append(content, rec.payload);
  }
  return content;
}

Status GdpFilesystem::mkdir(const std::string& path) {
  DirRecord rec;
  rec.type = DirRecord::Type::kMkdir;
  rec.path = path;
  GDP_RETURN_IF_ERROR(commit_record(rec));
  apply(tree_, rec);
  return ok_status();
}

Status GdpFilesystem::rename(const std::string& from, const std::string& to) {
  GDP_RETURN_IF_ERROR(refresh_if_tip_aware());
  if (!tree_.contains(from)) {
    return make_error(Errc::kNotFound, "no such path: " + from);
  }
  DirRecord rec;
  rec.type = DirRecord::Type::kRename;
  rec.path = from;
  rec.target = to;
  GDP_RETURN_IF_ERROR(commit_record(rec));
  apply(tree_, rec);
  return ok_status();
}

Status GdpFilesystem::set_attr(const std::string& path, const std::string& value) {
  GDP_RETURN_IF_ERROR(refresh_if_tip_aware());
  if (!tree_.contains(path)) {
    return make_error(Errc::kNotFound, "no such path: " + path);
  }
  DirRecord rec;
  rec.type = DirRecord::Type::kSetAttr;
  rec.path = path;
  rec.target = value;
  GDP_RETURN_IF_ERROR(commit_record(rec));
  apply(tree_, rec);
  return ok_status();
}

Status GdpFilesystem::remove(const std::string& path) {
  GDP_RETURN_IF_ERROR(refresh_if_tip_aware());
  if (!tree_.contains(path)) {
    return make_error(Errc::kNotFound, "no such path: " + path);
  }
  DirRecord rec;
  rec.type = DirRecord::Type::kUnlink;
  rec.path = path;
  GDP_RETURN_IF_ERROR(commit_record(rec));
  apply(tree_, rec);
  return ok_status();
}

// ---- Tip-aware views ------------------------------------------------------------

std::vector<std::string> GdpFilesystem::list() {
  // Best effort: a partitioned replica set serves the last known view
  // rather than failing a directory listing.
  (void)refresh_if_tip_aware();
  std::vector<std::string> out;
  out.reserve(tree_.size());
  for (const auto& [path, _] : tree_) out.push_back(path);
  return out;
}

bool GdpFilesystem::exists(const std::string& path) {
  (void)refresh_if_tip_aware();
  return tree_.contains(path);
}

}  // namespace gdp::caapi
