// Streaming CAAPI (§IV-A, §V-A, §VI-B).
//
// "A DataCapsule representing a streaming video can tolerate a few
// missing frames" — the stream interface embraces loss on the delivery
// path while never compromising integrity: every frame that *does* arrive
// is writer-signed and capsule-bound, live gaps are detected by seqno, and
// a player can backfill any gap later with a verified ranged read (the
// time-shift property: "secure replays at a later time").
#pragma once

#include <map>

#include "caapi/mount.hpp"
#include "client/client.hpp"
#include "harness/scenario.hpp"

namespace gdp::caapi {

/// Producer side: fire-and-forget frame appends (a live encoder does not
/// block on acks; durability is the infrastructure's job).
class StreamPublisher {
 public:
  /// Shared CAAPI entry point (create-new only: the publisher IS the
  /// stream's writer).  Mints keys and places the stream capsule.
  static Result<StreamPublisher> mount(const Mount& m);

  /// Deprecated shim path: caller makes and places the capsule.
  StreamPublisher(harness::Scenario& scenario, client::GdpClient& client,
                  harness::CapsuleSetup setup);

  /// Appends one frame without waiting for the ack.
  void publish_frame(BytesView frame);

  std::uint64_t frames_published() const { return published_; }
  const capsule::Metadata& metadata() const { return setup_.metadata; }
  /// Owner-side keys, e.g. for minting subscriber certs.
  const harness::CapsuleSetup& setup() const { return setup_; }

 private:
  harness::Scenario& scenario_;
  client::GdpClient& client_;
  harness::CapsuleSetup setup_;
  capsule::Writer writer_;
  std::uint64_t published_ = 0;
};

/// Consumer side: live subscription with gap tracking and on-demand,
/// verified backfill.
class StreamPlayer {
 public:
  /// Shared CAAPI entry point (open-existing only: players attach to a
  /// publisher's capsule).
  static Result<StreamPlayer> mount(const Mount& m);

  StreamPlayer(harness::Scenario& scenario, client::GdpClient& client,
               const capsule::Metadata& metadata);

  /// Joins the live feed (SubCert-gated).
  Result<bool> join(const trust::Cert& sub_cert);

  /// Frames received live (by seqno); all verified.
  std::size_t frames_received() const { return frames_.size(); }
  std::uint64_t highest_seqno() const { return highest_; }

  /// Seqnos missing below the highest received frame — lost in transit.
  std::vector<std::uint64_t> gaps() const;

  /// Fetches every gap through verified reads; returns frames recovered.
  Result<std::uint64_t> backfill();

  /// The reassembled frame at `seqno`, if present.
  std::optional<Bytes> frame(std::uint64_t seqno) const;

 private:
  harness::Scenario& scenario_;
  client::GdpClient& client_;
  capsule::Metadata metadata_;
  std::map<std::uint64_t, Bytes> frames_;
  std::uint64_t highest_ = 0;
};

}  // namespace gdp::caapi
