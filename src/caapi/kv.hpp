// Key-value store CAAPI (§V-B).
//
// "DataCapsules are sufficient to implement any convenient, mutable data
// storage repository."  The KV store materializes a mutable map from an
// append-only capsule of put/del operations.  Every K operations the
// writer emits a *checkpoint* record containing the full snapshot; paired
// with the checkpoint hash-pointer strategy, a cold reader recovers the
// current state by fetching only the latest checkpoint plus the tail —
// the paper's "a file-system interface on a DataCapsule may make all
// records include a hash-pointer to a checkpoint record".
#pragma once

#include <map>
#include <optional>
#include <string>

#include "caapi/mount.hpp"
#include "client/client.hpp"
#include "harness/scenario.hpp"

namespace gdp::caapi {

class GdpKvStore {
 public:
  struct Options {
    std::uint64_t checkpoint_interval = 16;  ///< ops between snapshots
    std::uint32_t required_acks = 1;
  };

  /// Shared CAAPI entry point.  Create-new mints keys and places a fresh
  /// kv capsule; open-existing attaches a *read-only* recovered view of
  /// another writer's capsule (puts/dels fail with kPermissionDenied —
  /// the kv capsule is strict-single-writer).
  static Result<GdpKvStore> mount(const Mount& m);

  /// Deprecated shims over mount() — the pre-Mount entry points.
  static Result<GdpKvStore> create(harness::Scenario& scenario,
                                   client::GdpClient& client,
                                   std::vector<server::CapsuleServer*> servers,
                                   const std::string& label, Options options);
  static Result<GdpKvStore> create(harness::Scenario& scenario,
                                   client::GdpClient& client,
                                   std::vector<server::CapsuleServer*> servers,
                                   const std::string& label) {
    return create(scenario, client, std::move(servers), label, Options{});
  }

  Status put(const std::string& key, const std::string& value);
  Status del(const std::string& key);
  std::optional<std::string> get(const std::string& key) const;
  std::size_t size() const { return map_.size(); }

  /// Cold recovery: fetch latest checkpoint + tail only (not the whole
  /// history).  Returns the number of records fetched, for the
  /// checkpoint-efficiency assertions and benches.
  Result<std::uint64_t> recover(const capsule::Metadata& metadata);

  const capsule::Metadata& metadata() const { return setup_.metadata; }

 private:
  GdpKvStore(harness::Scenario& scenario, client::GdpClient& client,
             Options options, harness::CapsuleSetup setup,
             std::optional<capsule::Writer> writer);

  Status append_op(Bytes payload);
  Status apply(BytesView payload);
  Bytes snapshot_payload() const;

  harness::Scenario& scenario_;
  client::GdpClient& client_;
  Options options_;
  harness::CapsuleSetup setup_;
  std::optional<capsule::Writer> writer_;  ///< absent on read-only mounts
  std::map<std::string, std::string> map_;
  std::uint64_t ops_since_checkpoint_ = 0;
};

}  // namespace gdp::caapi
