// Time-series CAAPI (§VIII: "time-series environmental sensors" and
// their browser visualizations were the GDP prototype's first real
// applications).
//
// A sensor appends samples; record headers already carry the writer's
// timestamp, and the single-writer discipline makes timestamps monotone —
// so a reader can answer "what happened between t0 and t1" with a binary
// search over seqnos (O(log n) point reads) followed by one verified range
// read, never scanning the whole history.
#pragma once

#include "caapi/mount.hpp"
#include "client/client.hpp"
#include "harness/scenario.hpp"

namespace gdp::caapi {

struct Sample {
  std::int64_t timestamp_ns = 0;
  double value = 0;
  Bytes tag;  ///< optional application payload

  Bytes serialize() const;
  static Result<Sample> deserialize(BytesView b);
};

class TimeSeriesWriter {
 public:
  /// Shared CAAPI entry point (create-new only: the sensor is the
  /// single writer).  Mints keys and places the series capsule.
  static Result<TimeSeriesWriter> mount(const Mount& m);

  TimeSeriesWriter(harness::Scenario& scenario, client::GdpClient& client,
                   harness::CapsuleSetup setup);

  /// Appends one sample stamped with the current (simulated) time.
  Status record(double value, BytesView tag = {});

  const capsule::Metadata& metadata() const { return setup_.metadata; }
  std::uint64_t count() const { return count_; }

 private:
  harness::Scenario& scenario_;
  client::GdpClient& client_;
  harness::CapsuleSetup setup_;
  capsule::Writer writer_;
  std::uint64_t count_ = 0;
};

class TimeSeriesReader {
 public:
  /// Shared CAAPI entry point (open-existing only).
  static Result<TimeSeriesReader> mount(const Mount& m);

  TimeSeriesReader(harness::Scenario& scenario, client::GdpClient& client,
                   const capsule::Metadata& metadata);

  /// All samples with t0 <= timestamp <= t1, verified.  Network cost:
  /// O(log n) point reads for the boundary search + one range read.
  Result<std::vector<Sample>> query(TimePoint t0, TimePoint t1);

  /// The most recent `n` samples.
  Result<std::vector<Sample>> latest(std::uint64_t n);

  /// Point reads issued by the last query (exposed for the efficiency
  /// assertions: must stay logarithmic).
  std::uint64_t point_reads() const { return point_reads_; }

 private:
  /// Timestamp of the record at `seqno` (one verified point read).
  Result<std::int64_t> timestamp_at(std::uint64_t seqno);
  /// Smallest seqno in [1, tip] whose timestamp is >= t (tip+1 if none).
  Result<std::uint64_t> lower_bound_seqno(std::int64_t t, std::uint64_t tip);

  harness::Scenario& scenario_;
  client::GdpClient& client_;
  capsule::Metadata metadata_;
  std::uint64_t point_reads_ = 0;
};

}  // namespace gdp::caapi
