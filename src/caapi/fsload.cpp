#include "caapi/fsload.hpp"

#include <algorithm>

#include "capsule/strategy.hpp"

namespace gdp::caapi {

using client::await;

namespace {

/// One branch writer's identity and remaining work.
struct LoadWriter {
  capsule::WriterCredential credential;
  capsule::Writer writer;
  client::GdpClient* client = nullptr;
  std::size_t next_op = 0;  ///< index of the next DirRecord to land
};

/// The k-th directory mutation of writer i: a mkdir in the shared tree,
/// with a set-attr ride-along every other op so replay exercises
/// non-idempotent ordering too.
DirRecord op_record(std::size_t writer, std::size_t k) {
  DirRecord rec;
  if (k % 2 == 1) {
    rec.type = DirRecord::Type::kSetAttr;
    rec.path = "load/w" + std::to_string(writer) + "/d0";
    rec.target = "gen-" + std::to_string(k);
  } else {
    rec.type = DirRecord::Type::kMkdir;
    rec.path = "load/w" + std::to_string(writer) + "/d" + std::to_string(k);
  }
  return rec;
}

}  // namespace

Result<FsLoadReport> run_fs_load(harness::Scenario& scenario, GdpFilesystem& owner,
                                 std::vector<server::CapsuleServer*> servers,
                                 std::vector<client::GdpClient*> clients,
                                 FsLoadOptions options) {
  if (clients.empty() || servers.empty() || options.writers == 0) {
    return make_error(Errc::kInvalidArgument, "fsload needs clients and servers");
  }
  const capsule::Metadata& metadata = owner.directory_metadata();

  // Credential every writer off the owner; each gets its own branch key
  // and chains records with its own chain-strategy writer.
  std::vector<LoadWriter> writers;
  writers.reserve(options.writers);
  for (std::size_t i = 0; i < options.writers; ++i) {
    crypto::PrivateKey key = crypto::PrivateKey::generate(scenario.key_rng());
    GDP_ASSIGN_OR_RETURN(
        capsule::WriterCredential credential,
        owner.grant_writer(key.public_key(), "w" + std::to_string(i)));
    writers.push_back(LoadWriter{
        std::move(credential),
        capsule::Writer(metadata, key, capsule::strategy_from_id("chain")),
        clients[i % clients.size()]});
  }

  FsLoadReport report;

  if (options.concurrency == GdpFilesystem::Concurrency::kBlind) {
    // Every writer extends its own branch; resend anything unacked.
    struct Pending {
      std::size_t writer;
      capsule::Record record;
    };
    std::vector<Pending> pending;
    for (std::size_t i = 0; i < writers.size(); ++i) {
      for (std::size_t k = 0; k < options.ops_per_writer; ++k) {
        Bytes envelope = capsule::wrap_mw_payload(
            writers[i].credential, op_record(i, k).serialize());
        pending.push_back(Pending{
            i, writers[i].writer.append(envelope,
                                        scenario.sim().now().count())});
      }
    }
    for (std::uint32_t round = 0; round < options.max_rounds && !pending.empty();
         ++round) {
      if (options.on_round) options.on_round(round);
      std::vector<client::OpPtr<client::AppendOutcome>> ops;
      ops.reserve(pending.size());
      for (const Pending& p : pending) {
        ops.push_back(writers[p.writer].client->append_record(
            metadata, p.record, options.required_acks));
      }
      scenario.settle();
      std::vector<Pending> next;
      for (std::size_t j = 0; j < ops.size(); ++j) {
        auto outcome = await(scenario.sim(), ops[j]);
        if (outcome.ok()) {
          ++report.committed;
        } else {
          next.push_back(std::move(pending[j]));  // resend next round
        }
      }
      pending = std::move(next);
    }
    report.failures = pending.size();
  } else {
    // CAS rounds: every writer with work left races one record per round;
    // losers adopt the nacked tip and re-enter the next round.
    for (std::uint32_t round = 0; round < options.max_rounds; ++round) {
      struct InFlight {
        std::size_t writer;
        std::uint64_t base_seqno;
        Name base_hash;
        client::OpPtr<client::CasOutcome> op;
      };
      std::vector<InFlight> inflight;
      for (std::size_t i = 0; i < writers.size(); ++i) {
        LoadWriter& w = writers[i];
        if (w.next_op >= options.ops_per_writer) continue;
        Bytes envelope = capsule::wrap_mw_payload(
            w.credential, op_record(i, w.next_op).serialize());
        const std::uint64_t base_seqno = w.writer.next_seqno() - 1;
        const Name base_hash = w.writer.tip_hash();
        capsule::Record record =
            w.writer.append(envelope, scenario.sim().now().count());
        inflight.push_back(InFlight{
            i, base_seqno, base_hash,
            w.client->cond_append(metadata, record, base_seqno, base_hash,
                                  options.required_acks)});
      }
      if (inflight.empty()) break;
      if (options.on_round) options.on_round(round);
      scenario.settle();
      for (InFlight& f : inflight) {
        LoadWriter& w = writers[f.writer];
        auto outcome = await(scenario.sim(), f.op);
        if (!outcome.ok()) {
          // Timed out / shed: roll the local chain back to the base tip
          // and retry.  At-least-once — if the append actually landed,
          // the retried record is a semantically idempotent duplicate.
          (void)w.writer.rebase(f.base_seqno, f.base_hash);
          continue;
        }
        if (outcome->won) {
          ++report.committed;
          ++w.next_op;
        } else {
          ++report.conflicts;
          GDP_RETURN_IF_ERROR(
              w.writer.rebase(outcome->tip_seqno, outcome->tip_hash));
        }
      }
    }
    for (const LoadWriter& w : writers) {
      report.failures += options.ops_per_writer - w.next_op;
    }
  }

  // Let anti-entropy finish healing flap-era divergence, then demand a
  // byte-identical replayed tree on every replica.
  scenario.settle();
  scenario.settle_for(options.final_settle);
  scenario.settle();
  for (server::CapsuleServer* server : servers) {
    const store::CapsuleStore* cs = server->storage().find(metadata.name());
    if (cs == nullptr) continue;  // replica never hosted the capsule
    GDP_ASSIGN_OR_RETURN(
        Name digest,
        GdpFilesystem::replay_digest(metadata, cs->state().export_records()));
    report.replica_digests.push_back(digest);
  }
  report.converged =
      !report.replica_digests.empty() &&
      std::all_of(report.replica_digests.begin(), report.replica_digests.end(),
                  [&](const Name& d) { return d == report.replica_digests[0]; });

  GDP_RETURN_IF_ERROR(owner.refresh());
  report.client_digest = owner.tree_digest();
  return report;
}

}  // namespace gdp::caapi
