#include "common/log.hpp"

namespace gdp {

LogLevel& log_threshold() {
  static LogLevel level = LogLevel::kOff;
  return level;
}

const Clock*& log_clock() {
  static const Clock* clock = nullptr;
  return clock;
}

}  // namespace gdp
