#include "common/log.hpp"

namespace gdp {

LogLevel& log_threshold() {
  static LogLevel level = LogLevel::kOff;
  return level;
}

}  // namespace gdp
