// Deterministic pseudo-random generator.
//
// All randomness in the library flows through Rng so that simulations,
// tests and benchmarks are reproducible from a seed.  The generator is
// xoshiro256** seeded via splitmix64 — fast, well-distributed, and *not*
// cryptographic: key generation in `crypto` stretches Rng output through
// SHA-256, and signing uses deterministic (RFC-6979-style) nonces so no
// secure RNG is ever required.
#pragma once

#include <cstdint>
#include <limits>

#include "common/bytes.hpp"

namespace gdp {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    auto rotl = [](std::uint64_t v, int k) {
      return (v << k) | (v >> (64 - k));
    };
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound); bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit =
        std::numeric_limits<std::uint64_t>::max() -
        std::numeric_limits<std::uint64_t>::max() % bound;
    std::uint64_t v;
    do {
      v = next_u64();
    } while (v >= limit);
    return v % bound;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  bool next_bool(double p_true) { return next_double() < p_true; }

  Bytes next_bytes(std::size_t n) {
    Bytes out(n);
    std::size_t i = 0;
    while (i < n) {
      std::uint64_t v = next_u64();
      for (int b = 0; b < 8 && i < n; ++b, ++i) {
        out[i] = static_cast<std::uint8_t>(v >> (8 * b));
      }
    }
    return out;
  }

  /// Derives an independent child generator (for per-node streams).
  Rng fork() { return Rng(next_u64()); }

 private:
  std::uint64_t state_[4] = {};
};

}  // namespace gdp
