#include "common/buffer.hpp"

#include <bit>
#include <cassert>
#include <mutex>
#include <new>

namespace gdp {

std::atomic<std::uint64_t> BufferStats::segment_allocs{0};
std::atomic<std::uint64_t> BufferStats::segment_reuses{0};
std::atomic<std::uint64_t> BufferStats::segment_releases{0};
std::atomic<std::uint64_t> BufferStats::bytes_copied{0};
std::atomic<std::uint64_t> BufferStats::arena_blocks{0};
std::atomic<std::uint64_t> BufferStats::arena_bytes{0};

BufferStats::Snapshot BufferStats::snapshot() {
  Snapshot s;
  s.segment_allocs = segment_allocs.load(std::memory_order_relaxed);
  s.segment_reuses = segment_reuses.load(std::memory_order_relaxed);
  s.segment_releases = segment_releases.load(std::memory_order_relaxed);
  s.bytes_copied = bytes_copied.load(std::memory_order_relaxed);
  s.arena_blocks = arena_blocks.load(std::memory_order_relaxed);
  s.arena_bytes = arena_bytes.load(std::memory_order_relaxed);
  return s;
}

struct SegmentPool::CentralClass {
  mutable std::mutex mu;
  Segment* head = nullptr;
  std::size_t count = 0;
};

/// Per-thread freelist front-end.  Destruction (thread exit) flushes back
/// to the central lists; the pool is a function-local static constructed
/// before any cache, so it outlives them.
struct SegmentPool::ThreadCache {
  struct ClassCache {
    Segment* head = nullptr;
    std::size_t count = 0;
  };
  ClassCache classes[kNumClasses];
  SegmentPool* pool = nullptr;

  ~ThreadCache() {
    for (std::size_t c = 0; c < kNumClasses; ++c) {
      ClassCache& tc = classes[c];
      if (tc.head == nullptr) continue;
      CentralClass& central = pool->classes_[c];
      std::lock_guard<std::mutex> lock(central.mu);
      while (tc.head != nullptr) {
        Segment* s = tc.head;
        tc.head = s->next_free_;
        s->next_free_ = central.head;
        central.head = s;
        ++central.count;
      }
      tc.count = 0;
    }
  }
};

SegmentPool::SegmentPool() : classes_(new CentralClass[kNumClasses]) {}

SegmentPool::~SegmentPool() {
  for (std::size_t c = 0; c < kNumClasses; ++c) {
    Segment* s = classes_[c].head;
    while (s != nullptr) {
      Segment* next = s->next_free_;
      ::operator delete(static_cast<void*>(s));
      s = next;
    }
  }
}

SegmentPool& SegmentPool::instance() {
  static SegmentPool pool;
  return pool;
}

SegmentPool::ThreadCache& SegmentPool::cache() {
  thread_local ThreadCache tc;
  tc.pool = this;
  return tc;
}

std::size_t SegmentPool::class_for(std::size_t n) {
  if (n <= kMinClassBytes) return 0;
  return static_cast<std::size_t>(
      std::bit_width(std::bit_ceil(n) / kMinClassBytes) - 1);
}

Segment* SegmentPool::allocate_raw(std::size_t capacity, std::uint32_t cls) {
  void* mem = ::operator new(sizeof(Segment) + capacity);
  Segment* s = new (mem) Segment();
  s->capacity_ = capacity;
  s->size_class_ = cls;
  BufferStats::segment_allocs.fetch_add(1, std::memory_order_relaxed);
  return s;
}

SegRef SegmentPool::acquire(std::size_t n) {
  if (n > kMaxClassBytes) {
    // Oversized: direct heap, never pooled (size_class_ == kNumClasses).
    Segment* s = allocate_raw(n, kNumClasses);
    s->size_ = n;
    return SegRef(s);
  }
  const std::size_t cls = class_for(n);
  ThreadCache::ClassCache& tc = cache().classes[cls];
  if (tc.head == nullptr) {
    // Refill half a cache's worth from the central freelist in one
    // critical section.
    CentralClass& central = classes_[cls];
    std::lock_guard<std::mutex> lock(central.mu);
    for (std::size_t i = 0; i < kCacheCap / 2 && central.head != nullptr; ++i) {
      Segment* s = central.head;
      central.head = s->next_free_;
      --central.count;
      s->next_free_ = tc.head;
      tc.head = s;
      ++tc.count;
    }
  }
  Segment* s;
  if (tc.head != nullptr) {
    s = tc.head;
    tc.head = s->next_free_;
    --tc.count;
    s->next_free_ = nullptr;
    s->refs_.store(1, std::memory_order_relaxed);
    BufferStats::segment_reuses.fetch_add(1, std::memory_order_relaxed);
  } else {
    s = allocate_raw(class_bytes(cls), static_cast<std::uint32_t>(cls));
  }
  s->size_ = n;
  return SegRef(s);
}

void SegmentPool::release(Segment* s) {
  BufferStats::segment_releases.fetch_add(1, std::memory_order_relaxed);
  if (s->size_class_ >= kNumClasses) {
    s->~Segment();
    ::operator delete(static_cast<void*>(s));
    return;
  }
  const std::size_t cls = s->size_class_;
  ThreadCache::ClassCache& tc = cache().classes[cls];
  s->next_free_ = tc.head;
  tc.head = s;
  ++tc.count;
  if (tc.count >= kCacheCap) {
    // Flush half to the central freelist in one critical section.
    CentralClass& central = classes_[cls];
    std::lock_guard<std::mutex> lock(central.mu);
    for (std::size_t i = 0; i < kCacheCap / 2; ++i) {
      Segment* f = tc.head;
      tc.head = f->next_free_;
      --tc.count;
      f->next_free_ = central.head;
      central.head = f;
      ++central.count;
    }
  }
}

std::size_t SegmentPool::central_free() const {
  std::size_t total = 0;
  for (std::size_t c = 0; c < kNumClasses; ++c) {
    std::lock_guard<std::mutex> lock(classes_[c].mu);
    total += classes_[c].count;
  }
  return total;
}

Arena::Arena(std::size_t block_bytes) : block_bytes_(block_bytes) {
  assert(block_bytes_ > 0);
}

void* Arena::alloc(std::size_t n, std::size_t align) {
  assert(align != 0 && (align & (align - 1)) == 0);
  if (cur_ < blocks_.size()) {
    Block& b = blocks_[cur_];
    std::size_t aligned = (off_ + align - 1) & ~(align - 1);
    if (aligned + n <= b.cap) {
      off_ = aligned + n;
      allocated_ += n;
      BufferStats::arena_bytes.fetch_add(n, std::memory_order_relaxed);
      return b.mem.get() + aligned;
    }
    // Try the next retained block (after a reset() the vector persists).
    if (cur_ + 1 < blocks_.size() && n <= blocks_[cur_ + 1].cap) {
      ++cur_;
      off_ = n;
      allocated_ += n;
      BufferStats::arena_bytes.fetch_add(n, std::memory_order_relaxed);
      return blocks_[cur_].mem.get();
    }
  }
  // Fresh block, big enough for the request (alignment of new[] is
  // max_align_t, which covers every align we accept).
  const std::size_t cap = n > block_bytes_ ? n : block_bytes_;
  blocks_.push_back(Block{std::make_unique<std::uint8_t[]>(cap), cap});
  BufferStats::arena_blocks.fetch_add(1, std::memory_order_relaxed);
  cur_ = blocks_.size() - 1;
  off_ = n;
  allocated_ += n;
  BufferStats::arena_bytes.fetch_add(n, std::memory_order_relaxed);
  return blocks_[cur_].mem.get();
}

void Arena::reset() {
  cur_ = 0;
  off_ = 0;
  allocated_ = 0;
}

}  // namespace gdp
