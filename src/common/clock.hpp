// Time abstraction.
//
// Everything network-facing takes a Clock so the discrete-event simulator
// can drive protocol timers deterministically; wall-clock is only used by
// CPU micro-benchmarks.  Times are nanoseconds since an arbitrary epoch.
#pragma once

#include <chrono>
#include <cstdint>

namespace gdp {

using Duration = std::chrono::nanoseconds;
using TimePoint = std::chrono::nanoseconds;  // offset from epoch

class Clock {
 public:
  virtual ~Clock() = default;
  virtual TimePoint now() const = 0;
};

/// Manually advanced clock owned by the simulator (or a test).
class SimClock final : public Clock {
 public:
  TimePoint now() const override { return now_; }
  void advance_to(TimePoint t) { now_ = t; }
  void advance(Duration d) { now_ += d; }

 private:
  TimePoint now_{};
};

/// Real steady clock, for benchmarks only.
class SteadyClock final : public Clock {
 public:
  TimePoint now() const override {
    return std::chrono::duration_cast<Duration>(
        std::chrono::steady_clock::now().time_since_epoch());
  }
};

inline constexpr Duration from_millis(std::int64_t ms) {
  return std::chrono::duration_cast<Duration>(std::chrono::milliseconds(ms));
}
inline constexpr Duration from_micros(std::int64_t us) {
  return std::chrono::duration_cast<Duration>(std::chrono::microseconds(us));
}
inline constexpr Duration from_seconds(double s) {
  return Duration(static_cast<std::int64_t>(s * 1e9));
}
inline constexpr double to_seconds(Duration d) {
  return static_cast<double>(d.count()) / 1e9;
}

}  // namespace gdp
