// Minimal leveled logger.
//
// Off by default so tests and benchmarks stay quiet; examples turn it on to
// narrate what the infrastructure is doing.  When a simulation clock is
// registered (opt-in, see set_log_clock) every line is prefixed with the
// current *simulated* time, so debug output correlates directly with
// telemetry trace spans.
#pragma once

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string_view>

#include "common/clock.hpp"

namespace gdp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel& log_threshold();

inline void set_log_level(LogLevel level) { log_threshold() = level; }

/// The clock log lines are stamped with; nullptr (default) = no stamp.
const Clock*& log_clock();

/// Opt-in: register the simulation clock so enabled log lines carry the
/// simulated time (`[12.345678s]`).  Pass nullptr to unregister — callers
/// owning the clock must do so before destroying it.
inline void set_log_clock(const Clock* clock) { log_clock() = clock; }

namespace internal {
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view tag) : enabled_(level >= log_threshold()) {
    if (enabled_) {
      if (const Clock* clock = log_clock(); clock != nullptr) {
        char stamp[32];
        std::snprintf(stamp, sizeof stamp, "[%.6fs] ",
                      static_cast<double>(clock->now().count()) / 1e9);
        stream_ << stamp;
      }
      static constexpr std::string_view kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
      stream_ << "[" << kNames[static_cast<int>(level)] << "] " << tag << ": ";
    }
  }
  ~LogLine() {
    if (enabled_) std::cerr << stream_.str() << '\n';
  }
  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};
}  // namespace internal

#define GDP_LOG(level, tag) ::gdp::internal::LogLine(::gdp::LogLevel::level, tag)

}  // namespace gdp
