// Minimal leveled logger.
//
// Off by default so tests and benchmarks stay quiet; examples turn it on to
// narrate what the infrastructure is doing.
#pragma once

#include <iostream>
#include <sstream>
#include <string_view>

namespace gdp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel& log_threshold();

inline void set_log_level(LogLevel level) { log_threshold() = level; }

namespace internal {
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view tag) : enabled_(level >= log_threshold()) {
    if (enabled_) {
      static constexpr std::string_view kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
      stream_ << "[" << kNames[static_cast<int>(level)] << "] " << tag << ": ";
    }
  }
  ~LogLine() {
    if (enabled_) std::cerr << stream_.str() << '\n';
  }
  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};
}  // namespace internal

#define GDP_LOG(level, tag) ::gdp::internal::LogLine(::gdp::LogLevel::level, tag)

}  // namespace gdp
