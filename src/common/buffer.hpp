// Pooled, refcounted wire segments and per-PDU scratch arenas.
//
// The forwarding fast path must not touch malloc per hop: the fig6
// throughput cliff between 4 KB and 8 KB PDUs was glibc returning the
// heap top to the kernel (M_TRIM_THRESHOLD) on every batch of large
// short-lived payload buffers, so each batch re-faulted fresh zero pages.
// Segments fix that structurally — a PDU's wire bytes are allocated once
// from a size-classed pool at the origin, travel by reference through
// every hop, and return to the pool when the last reference drops.
//
// Thread discipline: SegRef refcounts are atomic, so a segment may be
// handed across shard threads (SPSC rings move SegRefs) and released on a
// different thread than it was acquired on.  The pool keeps per-thread
// caches in front of mutex-protected central freelists (tcmalloc-style),
// so steady-state acquire/release never takes the lock.
//
// Accounting: every fresh allocation, pool reuse and instrumented memcpy
// bumps a process-wide BufferStats atomic.  Benches and tests read deltas
// to prove "zero payload copies per hop"; telemetry publishes the same
// numbers as `buffer.*` gauges (see telemetry/metrics.hpp).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/bytes.hpp"

namespace gdp {

/// Process-wide buffer accounting (relaxed atomics; read as deltas).
struct BufferStats {
  static std::atomic<std::uint64_t> segment_allocs;    ///< fresh heap segments
  static std::atomic<std::uint64_t> segment_reuses;    ///< served from a freelist
  static std::atomic<std::uint64_t> segment_releases;  ///< refcount reached zero
  static std::atomic<std::uint64_t> bytes_copied;      ///< instrumented memcpy volume
  static std::atomic<std::uint64_t> arena_blocks;      ///< arena block allocations
  static std::atomic<std::uint64_t> arena_bytes;       ///< scratch bytes handed out

  struct Snapshot {
    std::uint64_t segment_allocs = 0;
    std::uint64_t segment_reuses = 0;
    std::uint64_t segment_releases = 0;
    std::uint64_t bytes_copied = 0;
    std::uint64_t arena_blocks = 0;
    std::uint64_t arena_bytes = 0;

    /// Segments currently alive: acquired (fresh or reused) minus
    /// released.  Clamped at zero — the three counters are sampled
    /// independently under concurrent traffic, so a release can be
    /// counted before the acquire that produced it is visible.
    std::uint64_t live_segments() const {
      const std::uint64_t acquired = segment_allocs + segment_reuses;
      return acquired > segment_releases ? acquired - segment_releases : 0;
    }
  };
  static Snapshot snapshot();

  /// Notes `n` bytes moved by an instrumented copy (serialize, clone,
  /// materialize).  The zero-copy forward path never calls this.
  static void note_copy(std::size_t n) {
    bytes_copied.fetch_add(n, std::memory_order_relaxed);
  }
};

class SegmentPool;

/// A refcounted contiguous buffer; the byte storage follows the header
/// inline.  Never constructed directly — SegmentPool::acquire() only.
class Segment {
 public:
  std::uint8_t* data() { return reinterpret_cast<std::uint8_t*>(this + 1); }
  const std::uint8_t* data() const {
    return reinterpret_cast<const std::uint8_t*>(this + 1);
  }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }
  /// In-use length; callers may shrink or grow within capacity.
  void set_size(std::size_t n) { size_ = n; }
  std::uint32_t refcount() const {
    return refs_.load(std::memory_order_acquire);
  }

 private:
  friend class SegmentPool;
  friend class SegRef;

  std::atomic<std::uint32_t> refs_{1};
  std::uint32_t size_class_ = 0;  ///< kNumClasses = unpooled (direct heap)
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
  Segment* next_free_ = nullptr;  ///< freelist link while pooled
};

/// Intrusive smart pointer over Segment.  Copy shares (refcount bump),
/// move transfers; the segment returns to its pool when the last SegRef
/// drops.
class SegRef {
 public:
  SegRef() = default;
  SegRef(const SegRef& o) : seg_(o.seg_) { retain(); }
  SegRef(SegRef&& o) noexcept : seg_(o.seg_) { o.seg_ = nullptr; }
  SegRef& operator=(const SegRef& o) {
    // Retain before release so self- and alias-assignment never drop the
    // last reference mid-assignment.
    SegRef tmp(o);
    std::swap(seg_, tmp.seg_);
    return *this;
  }
  SegRef& operator=(SegRef&& o) noexcept {
    if (this != &o) {
      release();
      seg_ = o.seg_;
      o.seg_ = nullptr;
    }
    return *this;
  }
  ~SegRef() { release(); }

  Segment* get() const { return seg_; }
  Segment* operator->() const { return seg_; }
  explicit operator bool() const { return seg_ != nullptr; }
  /// True when this is the only reference — in-place mutation is safe.
  bool unique() const { return seg_ != nullptr && seg_->refcount() == 1; }
  BytesView view() const {
    return seg_ == nullptr ? BytesView{} : BytesView(seg_->data(), seg_->size());
  }
  void reset() { release(); }

 private:
  friend class SegmentPool;
  explicit SegRef(Segment* s) : seg_(s) {}  // adopts the initial reference

  void retain() {
    if (seg_ != nullptr) seg_->refs_.fetch_add(1, std::memory_order_relaxed);
  }
  void release();

  Segment* seg_ = nullptr;
};

/// Size-classed segment pool: power-of-two classes from 128 B to 1 MiB,
/// per-thread caches over mutex-protected central freelists.  Requests
/// beyond the largest class fall through to the heap (counted, unpooled).
class SegmentPool {
 public:
  static constexpr std::size_t kMinClassBytes = 128;
  static constexpr std::size_t kMaxClassBytes = 1u << 20;
  static constexpr std::size_t kNumClasses = 14;  // 128 << 13 == 1 MiB
  /// Per-thread cache depth per class; half moves to/from the central
  /// freelist at a time, so the lock is taken once per kCacheCap/2 ops.
  static constexpr std::size_t kCacheCap = 64;

  /// The process-wide pool (segments may cross threads, so there is one).
  static SegmentPool& instance();

  /// A segment with capacity >= n and size() == n.  Contents undefined.
  SegRef acquire(std::size_t n);

  /// Central freelist population (excludes thread caches); tests only.
  std::size_t central_free() const;

  ~SegmentPool();

 private:
  friend class SegRef;
  struct CentralClass;
  struct ThreadCache;

  static std::size_t class_for(std::size_t n);
  static std::size_t class_bytes(std::size_t cls) { return kMinClassBytes << cls; }
  static Segment* allocate_raw(std::size_t capacity, std::uint32_t cls);

  void release(Segment* s);
  ThreadCache& cache();

  std::unique_ptr<CentralClass[]> classes_;

  SegmentPool();
};

inline void SegRef::release() {
  if (seg_ == nullptr) return;
  Segment* s = seg_;
  seg_ = nullptr;
  if (s->refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    SegmentPool::instance().release(s);
  }
}

/// Bump allocator for per-PDU / per-batch scratch: allocation is a pointer
/// increment, reset() recycles every block in one call (the first block is
/// kept, so a steady-state arena stops touching malloc entirely).
class Arena {
 public:
  explicit Arena(std::size_t block_bytes = 16384);

  void* alloc(std::size_t n, std::size_t align = alignof(std::max_align_t));

  template <typename T>
  T* alloc_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without running destructors");
    return static_cast<T*>(alloc(count * sizeof(T), alignof(T)));
  }

  /// Rewinds to empty; retains the first block's storage.
  void reset();

  std::size_t allocated() const { return allocated_; }
  std::size_t block_count() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<std::uint8_t[]> mem;
    std::size_t cap = 0;
  };
  std::vector<Block> blocks_;
  std::size_t cur_ = 0;        ///< active block index
  std::size_t off_ = 0;        ///< offset into active block
  std::size_t block_bytes_;    ///< default block size
  std::size_t allocated_ = 0;  ///< total bytes handed out since reset
};

}  // namespace gdp
