// Error model for the GDP library.
//
// Expected, data-dependent failures (a signature that does not verify, a
// record that is missing, a name with no route) are *values*, not
// exceptions: every fallible API returns Result<T>.  Exceptions are
// reserved for programming errors and resource exhaustion, per the C++
// Core Guidelines (E.*; I.10).
#pragma once

#include <cassert>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace gdp {

/// Machine-readable failure category; the message carries specifics.
enum class Errc {
  kOk = 0,
  kInvalidArgument,    // malformed input (bad hex, bad wire bytes, ...)
  kNotFound,           // record / capsule / route does not exist
  kAlreadyExists,      // duplicate creation
  kVerificationFailed, // signature / hash-chain / proof mismatch
  kPermissionDenied,   // missing or invalid delegation (AdCert/RtCert)
  kUnavailable,        // no live replica / link down / timeout
  kOutOfRange,         // seqno beyond capsule tail
  kCorruptData,        // storage-level integrity failure
  kFailedPrecondition, // API misuse detectable at runtime (e.g. writer state)
  kExpired,            // certificate or advertisement past expiry
  kConflict,           // compare-and-append lost: capsule tip moved
  kLeaseHeld,          // capsule tip lease held by another client
  kInternal,           // invariant violation inside the library
                       // (add new codes above; kInternal stays last so
                       //  kErrcCount and the C-API mapping stay exhaustive)
};

/// Number of Errc values.  The C API's Errc -> gdp_status table
/// static_asserts against this so a new Errc cannot be added without
/// extending the mapping.
inline constexpr int kErrcCount = static_cast<int>(Errc::kInternal) + 1;

std::string_view errc_name(Errc c);

/// A failure: category + human-readable context.
struct Error {
  Errc code = Errc::kInternal;
  std::string message;

  std::string to_string() const {
    return std::string(errc_name(code)) + ": " + message;
  }
};

inline Error make_error(Errc code, std::string message) {
  return Error{code, std::move(message)};
}

/// Result<T>: either a value or an Error.  Deliberately minimal —
/// value(), error(), ok(), and move-through helpers.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : rep_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Error error) : rep_(std::move(error)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(rep_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(rep_);
  }
  Errc code() const { return ok() ? Errc::kOk : error().code; }

 private:
  std::variant<T, Error> rep_;
};

/// Result<void> analogue.
class [[nodiscard]] Status {
 public:
  Status() = default;  // success
  Status(Error error) : error_(std::move(error)), ok_(false) {}  // NOLINT

  static Status ok_status() { return Status(); }

  bool ok() const { return ok_; }
  explicit operator bool() const { return ok_; }
  const Error& error() const {
    assert(!ok_);
    return error_;
  }
  Errc code() const { return ok_ ? Errc::kOk : error_.code; }
  std::string to_string() const { return ok_ ? "OK" : error_.to_string(); }

 private:
  Error error_{};
  bool ok_ = true;
};

inline Status ok_status() { return Status(); }

/// Propagates failure from an expression producing Status or Result<T>.
#define GDP_RETURN_IF_ERROR(expr)                         \
  do {                                                    \
    auto _gdp_status = (expr);                            \
    if (!_gdp_status.ok()) return _gdp_status.error();    \
  } while (0)

/// Evaluates a Result<T> expression, assigning the value or returning the
/// error: GDP_ASSIGN_OR_RETURN(auto x, ComputeX());
#define GDP_ASSIGN_OR_RETURN(decl, expr)       \
  GDP_ASSIGN_OR_RETURN_IMPL_(                  \
      GDP_RESULT_CONCAT_(_gdp_res_, __LINE__), decl, expr)
#define GDP_RESULT_CONCAT_INNER_(a, b) a##b
#define GDP_RESULT_CONCAT_(a, b) GDP_RESULT_CONCAT_INNER_(a, b)
#define GDP_ASSIGN_OR_RETURN_IMPL_(tmp, decl, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.error();                \
  decl = std::move(tmp).value()

}  // namespace gdp
