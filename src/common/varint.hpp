// LEB128-style variable-length integers and fixed-width little-endian
// helpers used by the canonical wire format.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"

namespace gdp {

/// Appends `v` as an unsigned LEB128 varint (1..10 bytes).
void put_varint(Bytes& out, std::uint64_t v);

/// Appends a fixed 8-byte little-endian integer.
void put_fixed64(Bytes& out, std::uint64_t v);

/// Appends a fixed 4-byte little-endian integer.
void put_fixed32(Bytes& out, std::uint32_t v);

/// Appends varint length followed by the raw bytes.
void put_length_prefixed(Bytes& out, BytesView b);

/// Sequential reader over a byte buffer; each get_* consumes input and
/// returns nullopt on truncation or overlong encodings.
class ByteReader {
 public:
  explicit ByteReader(BytesView data) : data_(data) {}

  std::optional<std::uint64_t> get_varint();
  std::optional<std::uint64_t> get_fixed64();
  std::optional<std::uint32_t> get_fixed32();
  std::optional<Bytes> get_bytes(std::size_t n);
  std::optional<Bytes> get_length_prefixed();

  bool empty() const { return pos_ >= data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }

 private:
  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace gdp
