#include "common/varint.hpp"

namespace gdp {

void put_varint(Bytes& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_fixed64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_fixed32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_length_prefixed(Bytes& out, BytesView b) {
  put_varint(out, b.size());
  append(out, b);
}

std::optional<std::uint64_t> ByteReader::get_varint() {
  std::uint64_t v = 0;
  int shift = 0;
  while (pos_ < data_.size()) {
    std::uint8_t byte = data_[pos_++];
    if (shift == 63 && byte > 1) return std::nullopt;  // overflow
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
    if (shift > 63) return std::nullopt;
  }
  return std::nullopt;  // truncated
}

std::optional<std::uint64_t> ByteReader::get_fixed64() {
  if (remaining() < 8) return std::nullopt;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::optional<std::uint32_t> ByteReader::get_fixed32() {
  if (remaining() < 4) return std::nullopt;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::optional<Bytes> ByteReader::get_bytes(std::size_t n) {
  if (remaining() < n) return std::nullopt;
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::optional<Bytes> ByteReader::get_length_prefixed() {
  auto len = get_varint();
  if (!len) return std::nullopt;
  if (*len > remaining()) return std::nullopt;
  return get_bytes(static_cast<std::size_t>(*len));
}

}  // namespace gdp
