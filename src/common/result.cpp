#include "common/result.hpp"

namespace gdp {

std::string_view errc_name(Errc c) {
  switch (c) {
    case Errc::kOk: return "OK";
    case Errc::kInvalidArgument: return "INVALID_ARGUMENT";
    case Errc::kNotFound: return "NOT_FOUND";
    case Errc::kAlreadyExists: return "ALREADY_EXISTS";
    case Errc::kVerificationFailed: return "VERIFICATION_FAILED";
    case Errc::kPermissionDenied: return "PERMISSION_DENIED";
    case Errc::kUnavailable: return "UNAVAILABLE";
    case Errc::kOutOfRange: return "OUT_OF_RANGE";
    case Errc::kCorruptData: return "CORRUPT_DATA";
    case Errc::kFailedPrecondition: return "FAILED_PRECONDITION";
    case Errc::kExpired: return "EXPIRED";
    case Errc::kConflict: return "CONFLICT";
    case Errc::kLeaseHeld: return "LEASE_HELD";
    case Errc::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

}  // namespace gdp
