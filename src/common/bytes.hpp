// Byte-buffer utilities shared by every GDP module.
//
// GDP deals almost exclusively in opaque octet strings (hashes, keys,
// signatures, serialized records), so we standardize on a single `Bytes`
// alias plus a small set of helpers for hex conversion, comparison and
// concatenation.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace gdp {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Builds a Bytes from a string's raw characters (no encoding applied).
Bytes to_bytes(std::string_view s);

/// Interprets a byte buffer as text (no validation; callers own semantics).
std::string to_string(BytesView b);

/// Lower-case hex encoding, e.g. {0xde,0xad} -> "dead".
std::string hex_encode(BytesView b);

/// Parses lower- or upper-case hex; returns nullopt on odd length or bad digit.
std::optional<Bytes> hex_decode(std::string_view hex);

/// Constant-time equality for secret material (MAC tags, keys).
bool constant_time_equal(BytesView a, BytesView b);

/// Appends `src` to `dst`.
void append(Bytes& dst, BytesView src);

/// Concatenates any number of buffers.
template <typename... Views>
Bytes concat(const Views&... views) {
  Bytes out;
  std::size_t total = (std::size_t{0} + ... + std::size_t{views.size()});
  out.reserve(total);
  (out.insert(out.end(), views.begin(), views.end()), ...);
  return out;
}

}  // namespace gdp
