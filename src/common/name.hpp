// Flat 256-bit names.
//
// Every addressable GDP entity — DataCapsule, DataCapsule-server,
// GDP-router, organization, client — lives in one flat name-space (§IV-B).
// A Name is the SHA-256 hash of the entity's signed metadata, so it doubles
// as a cryptographic trust anchor and as the routing address.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "common/bytes.hpp"

namespace gdp {

class Name {
 public:
  static constexpr std::size_t kSize = 32;

  constexpr Name() = default;
  explicit Name(const std::array<std::uint8_t, kSize>& raw) : raw_(raw) {}

  /// Builds a Name from exactly 32 bytes; nullopt otherwise.
  static std::optional<Name> from_bytes(BytesView b) {
    if (b.size() != kSize) return std::nullopt;
    Name n;
    std::memcpy(n.raw_.data(), b.data(), kSize);
    return n;
  }

  /// Parses 64 hex chars.
  static std::optional<Name> from_hex(std::string_view hex) {
    auto bytes = hex_decode(hex);
    if (!bytes) return std::nullopt;
    return from_bytes(*bytes);
  }

  const std::array<std::uint8_t, kSize>& raw() const { return raw_; }
  BytesView view() const { return BytesView(raw_.data(), raw_.size()); }
  Bytes bytes() const { return Bytes(raw_.begin(), raw_.end()); }

  std::string hex() const { return hex_encode(view()); }
  /// Abbreviated form for logs: first 8 hex chars.
  std::string short_hex() const { return hex().substr(0, 8); }

  bool is_zero() const {
    for (auto b : raw_) {
      if (b != 0) return false;
    }
    return true;
  }

  auto operator<=>(const Name&) const = default;

 private:
  std::array<std::uint8_t, kSize> raw_{};
};

}  // namespace gdp

template <>
struct std::hash<gdp::Name> {
  std::size_t operator()(const gdp::Name& n) const noexcept {
    // The name is itself a cryptographic hash; fold the first 8 bytes.
    std::size_t h;
    std::memcpy(&h, n.raw().data(), sizeof(h));
    return h;
  }
};
