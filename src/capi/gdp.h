/* C client API for the Global Data Plane.
 *
 * The paper's prototype exposes exactly this shape: "Client applications
 * primarily link against an event-driven C-based GDP library.  [It] takes
 * care of connecting to a GDP-router, advertising the desired names, and
 * providing the desired interface of a DataCapsule as an object that can
 * be appended to, read from, or subscribed to" (§VIII).  Language
 * bindings (the paper ships Python and Java ones) wrap these entry
 * points.
 *
 * This facade drives a self-contained simulated deployment so it is fully
 * testable offline; the handle types are opaque and the ABI is plain C.
 * All functions return 0 on success or a negative errno-style code; the
 * last failure message is available via gdp_last_error().
 */
#ifndef GDP_CAPI_H_
#define GDP_CAPI_H_

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef struct gdp_world gdp_world;     /* infrastructure + event loop */
typedef struct gdp_capsule gdp_capsule; /* a DataCapsule + its keys */

/* Status codes.  One canonical table: every library error category
 * (gdp::Errc) maps to exactly one code below, and the mapping is
 * static_assert-checked for exhaustiveness on the C++ side.  The first
 * five values predate the table and keep their ABI values. */
typedef enum gdp_status {
  GDP_OK = 0,
  GDP_ERR_INVALID = -1,      /* bad arguments / malformed input */
  GDP_ERR_UNAVAILABLE = -2,  /* no route / link down / replica down */
  GDP_ERR_VERIFY = -3,       /* integrity or delegation verification failed */
  GDP_ERR_NOT_FOUND = -4,    /* no such record / capsule */
  GDP_ERR_INTERNAL = -5,     /* invariant violation inside the library */
  GDP_ERR_EXISTS = -6,       /* duplicate creation */
  GDP_ERR_PERMISSION = -7,   /* missing or invalid delegation */
  GDP_ERR_OUT_OF_RANGE = -8, /* seqno beyond capsule tail */
  GDP_ERR_CORRUPT = -9,      /* storage-level integrity failure */
  GDP_ERR_PRECONDITION = -10,/* API misuse detectable at runtime */
  GDP_ERR_EXPIRED = -11,     /* certificate or advertisement past expiry */
  GDP_ERR_TIMEOUT = -12,     /* the per-op guard timeout fired (refines
                              * GDP_ERR_UNAVAILABLE: the op was sent but
                              * never answered in time) */
  GDP_ERR_CONFLICT = -13,    /* compare-and-append lost: the capsule tip
                              * moved and the retry budget ran out */
  GDP_ERR_LEASE_HELD = -14,  /* capsule-tip lease held by another client */
} gdp_status;

/* Stable token for a status code, e.g. "GDP_ERR_TIMEOUT"; never NULL. */
const char* gdp_status_name(int status);

/* Creates a deployment: one routing domain with its GLookupService, one
 * GDP-router, one DataCapsule-server and one client, deterministically
 * seeded.  Returns NULL on failure. */
gdp_world* gdp_world_create(uint64_t seed);
void gdp_world_destroy(gdp_world* world);

/* Human-readable description of the most recent error on this world. */
const char* gdp_last_error(const gdp_world* world);

/* Creates a DataCapsule (fresh owner + writer keys), places it on the
 * world's server under an AdCert delegation, and advertises it. */
gdp_capsule* gdp_capsule_create(gdp_world* world, const char* label);
void gdp_capsule_destroy(gdp_capsule* capsule);

/* The capsule's 32-byte flat name (the trust anchor). */
void gdp_capsule_name(const gdp_capsule* capsule, uint8_t name_out[32]);

/* Appends one record; on success *seqno_out (may be NULL) receives the
 * assigned sequence number.  The ack is verified before returning. */
int gdp_append(gdp_world* world, gdp_capsule* capsule, const uint8_t* data,
               size_t len, uint64_t* seqno_out);

/* Verified read of record `seqno` (1-based; 0 = latest).  On success the
 * payload is returned in a malloc'd buffer the caller frees with
 * gdp_buffer_free. */
int gdp_read(gdp_world* world, gdp_capsule* capsule, uint64_t seqno,
             uint8_t** data_out, size_t* len_out, uint64_t* seqno_out);
void gdp_buffer_free(uint8_t* buffer);

/* Current tip sequence number (0 if empty or unreachable). */
uint64_t gdp_tip(gdp_world* world, gdp_capsule* capsule);

/* Subscribes to future records; `callback` fires from inside gdp_run for
 * every verified event. */
typedef void (*gdp_event_fn)(uint64_t seqno, const uint8_t* data, size_t len,
                             void* user);
int gdp_subscribe(gdp_world* world, gdp_capsule* capsule, gdp_event_fn callback,
                  void* user);

/* Drives the event loop for `seconds` of simulated time (delivers
 * subscriptions, replication, timers). */
void gdp_run(gdp_world* world, double seconds);

/* ---- CapsuleFS ---------------------------------------------------------
 *
 * A mounted filesystem view backed by one multi-writer directory capsule
 * plus one capsule per file (the paper's §V-B layout).  Writes land
 * through the SCL compare-and-append path, so GDP_ERR_CONFLICT /
 * GDP_ERR_LEASE_HELD surface here when contention exhausts the retry
 * budget. */
typedef struct gdp_fs gdp_fs;

/* Mounts a fresh CapsuleFS (create-new: fresh owner + writer keys, the
 * directory capsule placed on the world's server).  NULL on failure —
 * see gdp_last_error. */
gdp_fs* gdp_fs_open(gdp_world* world, const char* label);
void gdp_fs_close(gdp_fs* fs);

/* Writes (or overwrites) the file at `path`. */
int gdp_fs_write(gdp_world* world, gdp_fs* fs, const char* path,
                 const uint8_t* data, size_t len);

/* Verified read of the whole file into a malloc'd buffer the caller
 * frees with gdp_buffer_free. */
int gdp_fs_read(gdp_world* world, gdp_fs* fs, const char* path,
                uint8_t** data_out, size_t* len_out);

/* Lists all paths in the directory capsule (tip-aware: reflects other
 * clients' committed writes).  On success *paths_out is a malloc'd array
 * of *count_out malloc'd strings; free with gdp_fs_list_free. */
int gdp_fs_list(gdp_world* world, gdp_fs* fs, char*** paths_out,
                size_t* count_out);
void gdp_fs_list_free(char** paths, size_t count);

/* Removes the file at `path`. */
int gdp_fs_remove(gdp_world* world, gdp_fs* fs, const char* path);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* GDP_CAPI_H_ */
