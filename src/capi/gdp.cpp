#include "capi/gdp.h"

#include <cstdlib>
#include <cstring>
#include <iterator>
#include <string>

#include "caapi/fs.hpp"
#include "harness/scenario.hpp"

using namespace gdp;

struct gdp_world {
  harness::Scenario scenario;
  router::GLookupService* domain = nullptr;
  router::Router* router = nullptr;
  server::CapsuleServer* server = nullptr;
  client::GdpClient* client = nullptr;
  std::string last_error;

  explicit gdp_world(std::uint64_t seed) : scenario(seed, "capi") {}
};

struct gdp_capsule {
  harness::CapsuleSetup setup;
  capsule::Writer writer;

  explicit gdp_capsule(harness::CapsuleSetup s)
      : setup(std::move(s)), writer(setup.make_writer()) {}
};

struct gdp_fs {
  gdp::caapi::GdpFilesystem fs;
};

namespace {

// The canonical Errc -> gdp_status table, in Errc declaration order.
// static_asserts below enforce both exhaustiveness (every Errc has a row)
// and order (so lookup is a direct index): adding an Errc without
// extending this table fails to compile.
struct ErrcMap {
  Errc errc;
  gdp_status status;
};

constexpr ErrcMap kErrcTable[] = {
    {Errc::kOk, GDP_OK},
    {Errc::kInvalidArgument, GDP_ERR_INVALID},
    {Errc::kNotFound, GDP_ERR_NOT_FOUND},
    {Errc::kAlreadyExists, GDP_ERR_EXISTS},
    {Errc::kVerificationFailed, GDP_ERR_VERIFY},
    {Errc::kPermissionDenied, GDP_ERR_PERMISSION},
    {Errc::kUnavailable, GDP_ERR_UNAVAILABLE},
    {Errc::kOutOfRange, GDP_ERR_OUT_OF_RANGE},
    {Errc::kCorruptData, GDP_ERR_CORRUPT},
    {Errc::kFailedPrecondition, GDP_ERR_PRECONDITION},
    {Errc::kExpired, GDP_ERR_EXPIRED},
    {Errc::kConflict, GDP_ERR_CONFLICT},
    {Errc::kLeaseHeld, GDP_ERR_LEASE_HELD},
    {Errc::kInternal, GDP_ERR_INTERNAL},
};

static_assert(std::size(kErrcTable) == kErrcCount,
              "every Errc needs a gdp_status row");
constexpr bool errc_table_in_order() {
  for (std::size_t i = 0; i < std::size(kErrcTable); ++i) {
    if (kErrcTable[i].errc != static_cast<Errc>(i)) return false;
  }
  return true;
}
static_assert(errc_table_in_order(), "kErrcTable rows must follow Errc order");

gdp_status map_errc(Errc code) {
  const auto idx = static_cast<std::size_t>(code);
  if (idx >= std::size(kErrcTable)) return GDP_ERR_INTERNAL;
  return kErrcTable[idx].status;
}

int fail(gdp_world* world, const Error& error,
         client::AwaitCondition condition = client::AwaitCondition::kResolved) {
  world->last_error = error.to_string();
  // The guard-timeout refinement: the library reports kUnavailable either
  // way, but the C API distinguishes "our per-op timer fired" from plain
  // unavailability.
  if (condition == client::AwaitCondition::kOpTimeout) return GDP_ERR_TIMEOUT;
  return map_errc(error.code);
}

}  // namespace

extern "C" const char* gdp_status_name(int status) {
  switch (static_cast<gdp_status>(status)) {
    case GDP_OK: return "GDP_OK";
    case GDP_ERR_INVALID: return "GDP_ERR_INVALID";
    case GDP_ERR_UNAVAILABLE: return "GDP_ERR_UNAVAILABLE";
    case GDP_ERR_VERIFY: return "GDP_ERR_VERIFY";
    case GDP_ERR_NOT_FOUND: return "GDP_ERR_NOT_FOUND";
    case GDP_ERR_INTERNAL: return "GDP_ERR_INTERNAL";
    case GDP_ERR_EXISTS: return "GDP_ERR_EXISTS";
    case GDP_ERR_PERMISSION: return "GDP_ERR_PERMISSION";
    case GDP_ERR_OUT_OF_RANGE: return "GDP_ERR_OUT_OF_RANGE";
    case GDP_ERR_CORRUPT: return "GDP_ERR_CORRUPT";
    case GDP_ERR_PRECONDITION: return "GDP_ERR_PRECONDITION";
    case GDP_ERR_EXPIRED: return "GDP_ERR_EXPIRED";
    case GDP_ERR_TIMEOUT: return "GDP_ERR_TIMEOUT";
    case GDP_ERR_CONFLICT: return "GDP_ERR_CONFLICT";
    case GDP_ERR_LEASE_HELD: return "GDP_ERR_LEASE_HELD";
  }
  return "GDP_ERR_UNKNOWN";
}

extern "C" {

gdp_world* gdp_world_create(uint64_t seed) {
  auto* world = new (std::nothrow) gdp_world(seed);
  if (world == nullptr) return nullptr;
  world->domain = world->scenario.add_domain("capi-domain", nullptr);
  world->router = world->scenario.add_router("capi-router", world->domain);
  world->server = world->scenario.add_server("capi-server", world->router);
  world->client = world->scenario.add_client("capi-client", world->router);
  world->scenario.attach_all();
  if (!world->server->attached() || !world->client->attached()) {
    delete world;
    return nullptr;
  }
  return world;
}

void gdp_world_destroy(gdp_world* world) { delete world; }

const char* gdp_last_error(const gdp_world* world) {
  return world == nullptr ? "null world" : world->last_error.c_str();
}

gdp_capsule* gdp_capsule_create(gdp_world* world, const char* label) {
  if (world == nullptr || label == nullptr) return nullptr;
  harness::CapsuleSetup setup =
      harness::make_capsule(world->scenario.key_rng(), label);
  Status placed = harness::place_capsule(world->scenario, setup, *world->client,
                                         {world->server});
  if (!placed.ok()) {
    world->last_error = placed.to_string();
    return nullptr;
  }
  return new (std::nothrow) gdp_capsule(std::move(setup));
}

void gdp_capsule_destroy(gdp_capsule* capsule) { delete capsule; }

void gdp_capsule_name(const gdp_capsule* capsule, uint8_t name_out[32]) {
  if (capsule == nullptr || name_out == nullptr) return;
  std::memcpy(name_out, capsule->setup.metadata.name().raw().data(), 32);
}

int gdp_append(gdp_world* world, gdp_capsule* capsule, const uint8_t* data,
               size_t len, uint64_t* seqno_out) {
  if (world == nullptr || capsule == nullptr || (data == nullptr && len > 0)) {
    return GDP_ERR_INVALID;
  }
  auto op = world->client->append(capsule->writer, BytesView(data, len));
  client::AwaitCondition cond;
  auto outcome = client::await(world->scenario.sim(), op, &cond);
  if (!outcome.ok()) return fail(world, outcome.error(), cond);
  if (seqno_out != nullptr) *seqno_out = outcome->seqno;
  return GDP_OK;
}

int gdp_read(gdp_world* world, gdp_capsule* capsule, uint64_t seqno,
             uint8_t** data_out, size_t* len_out, uint64_t* seqno_out) {
  if (world == nullptr || capsule == nullptr || data_out == nullptr ||
      len_out == nullptr) {
    return GDP_ERR_INVALID;
  }
  auto op = world->client->read(capsule->setup.metadata, seqno, seqno);
  client::AwaitCondition cond;
  auto outcome = client::await(world->scenario.sim(), op, &cond);
  if (!outcome.ok()) return fail(world, outcome.error(), cond);
  const capsule::Record& rec = outcome->records.back();
  auto* buffer = static_cast<uint8_t*>(std::malloc(rec.payload.size()));
  if (buffer == nullptr && !rec.payload.empty()) return GDP_ERR_INTERNAL;
  // Empty payloads: data() may be null and malloc(0) may return null;
  // memcpy requires non-null pointers even for size 0.
  if (!rec.payload.empty()) {
    std::memcpy(buffer, rec.payload.data(), rec.payload.size());
  }
  *data_out = buffer;
  *len_out = rec.payload.size();
  if (seqno_out != nullptr) *seqno_out = rec.header.seqno;
  return GDP_OK;
}

void gdp_buffer_free(uint8_t* buffer) { std::free(buffer); }

uint64_t gdp_tip(gdp_world* world, gdp_capsule* capsule) {
  if (world == nullptr || capsule == nullptr) return 0;
  auto op = world->client->read_latest(capsule->setup.metadata);
  auto outcome = client::await(world->scenario.sim(), op);
  if (!outcome.ok()) {
    world->last_error = outcome.error().to_string();
    return 0;
  }
  return outcome->heartbeat.seqno;
}

int gdp_subscribe(gdp_world* world, gdp_capsule* capsule, gdp_event_fn callback,
                  void* user) {
  if (world == nullptr || capsule == nullptr || callback == nullptr) {
    return GDP_ERR_INVALID;
  }
  const TimePoint now = world->scenario.sim().now();
  trust::Cert cert = capsule->setup.sub_cert_for(
      world->client->name(), now, now + from_seconds(365.0 * 24 * 3600));
  auto op = world->client->subscribe(
      capsule->setup.metadata, cert,
      [callback, user](const capsule::Record& rec, const capsule::Heartbeat&) {
        callback(rec.header.seqno, rec.payload.data(), rec.payload.size(), user);
      });
  client::AwaitCondition cond;
  auto outcome = client::await(world->scenario.sim(), op, &cond);
  if (!outcome.ok()) return fail(world, outcome.error(), cond);
  return GDP_OK;
}

void gdp_run(gdp_world* world, double seconds) {
  if (world == nullptr || seconds <= 0) return;
  world->scenario.settle_for(from_seconds(seconds));
}

gdp_fs* gdp_fs_open(gdp_world* world, const char* label) {
  if (world == nullptr || label == nullptr) return nullptr;
  auto mounted = caapi::GdpFilesystem::mount(caapi::Mount::create(
      world->scenario, *world->client, {world->server}, label));
  if (!mounted.ok()) {
    world->last_error = mounted.error().to_string();
    return nullptr;
  }
  return new (std::nothrow) gdp_fs{std::move(mounted).value()};
}

void gdp_fs_close(gdp_fs* fs) { delete fs; }

int gdp_fs_write(gdp_world* world, gdp_fs* fs, const char* path,
                 const uint8_t* data, size_t len) {
  if (world == nullptr || fs == nullptr || path == nullptr ||
      (data == nullptr && len > 0)) {
    return GDP_ERR_INVALID;
  }
  Status status = fs->fs.write_file(path, BytesView(data, len));
  if (!status.ok()) return fail(world, status.error());
  return GDP_OK;
}

int gdp_fs_read(gdp_world* world, gdp_fs* fs, const char* path,
                uint8_t** data_out, size_t* len_out) {
  if (world == nullptr || fs == nullptr || path == nullptr ||
      data_out == nullptr || len_out == nullptr) {
    return GDP_ERR_INVALID;
  }
  Result<Bytes> content = fs->fs.read_file(path);
  if (!content.ok()) return fail(world, content.error());
  auto* buffer = static_cast<uint8_t*>(std::malloc(content->size()));
  if (buffer == nullptr && !content->empty()) return GDP_ERR_INTERNAL;
  if (!content->empty()) std::memcpy(buffer, content->data(), content->size());
  *data_out = buffer;
  *len_out = content->size();
  return GDP_OK;
}

int gdp_fs_list(gdp_world* world, gdp_fs* fs, char*** paths_out,
                size_t* count_out) {
  if (world == nullptr || fs == nullptr || paths_out == nullptr ||
      count_out == nullptr) {
    return GDP_ERR_INVALID;
  }
  std::vector<std::string> paths = fs->fs.list();
  auto** out = static_cast<char**>(std::calloc(paths.size(), sizeof(char*)));
  if (out == nullptr && !paths.empty()) return GDP_ERR_INTERNAL;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    out[i] = static_cast<char*>(std::malloc(paths[i].size() + 1));
    if (out[i] == nullptr) {
      gdp_fs_list_free(out, i);
      return GDP_ERR_INTERNAL;
    }
    std::memcpy(out[i], paths[i].c_str(), paths[i].size() + 1);
  }
  *paths_out = out;
  *count_out = paths.size();
  return GDP_OK;
}

void gdp_fs_list_free(char** paths, size_t count) {
  if (paths == nullptr) return;
  for (size_t i = 0; i < count; ++i) std::free(paths[i]);
  std::free(paths);
}

int gdp_fs_remove(gdp_world* world, gdp_fs* fs, const char* path) {
  if (world == nullptr || fs == nullptr || path == nullptr) {
    return GDP_ERR_INVALID;
  }
  Status status = fs->fs.remove(path);
  if (!status.ok()) return fail(world, status.error());
  return GDP_OK;
}

}  // extern "C"
