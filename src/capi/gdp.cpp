#include "capi/gdp.h"

#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/scenario.hpp"

using namespace gdp;

struct gdp_world {
  harness::Scenario scenario;
  router::GLookupService* domain = nullptr;
  router::Router* router = nullptr;
  server::CapsuleServer* server = nullptr;
  client::GdpClient* client = nullptr;
  std::string last_error;

  explicit gdp_world(std::uint64_t seed) : scenario(seed, "capi") {}
};

struct gdp_capsule {
  harness::CapsuleSetup setup;
  capsule::Writer writer;

  explicit gdp_capsule(harness::CapsuleSetup s)
      : setup(std::move(s)), writer(setup.make_writer()) {}
};

namespace {

int map_errc(Errc code) {
  switch (code) {
    case Errc::kOk: return GDP_OK;
    case Errc::kInvalidArgument: return GDP_ERR_INVALID;
    case Errc::kUnavailable:
    case Errc::kExpired: return GDP_ERR_UNAVAILABLE;
    case Errc::kVerificationFailed:
    case Errc::kPermissionDenied:
    case Errc::kCorruptData: return GDP_ERR_VERIFY;
    case Errc::kNotFound:
    case Errc::kOutOfRange: return GDP_ERR_NOT_FOUND;
    default: return GDP_ERR_INTERNAL;
  }
}

int fail(gdp_world* world, const Error& error) {
  world->last_error = error.to_string();
  return map_errc(error.code);
}

}  // namespace

extern "C" {

gdp_world* gdp_world_create(uint64_t seed) {
  auto* world = new (std::nothrow) gdp_world(seed);
  if (world == nullptr) return nullptr;
  world->domain = world->scenario.add_domain("capi-domain", nullptr);
  world->router = world->scenario.add_router("capi-router", world->domain);
  world->server = world->scenario.add_server("capi-server", world->router);
  world->client = world->scenario.add_client("capi-client", world->router);
  world->scenario.attach_all();
  if (!world->server->attached() || !world->client->attached()) {
    delete world;
    return nullptr;
  }
  return world;
}

void gdp_world_destroy(gdp_world* world) { delete world; }

const char* gdp_last_error(const gdp_world* world) {
  return world == nullptr ? "null world" : world->last_error.c_str();
}

gdp_capsule* gdp_capsule_create(gdp_world* world, const char* label) {
  if (world == nullptr || label == nullptr) return nullptr;
  harness::CapsuleSetup setup =
      harness::make_capsule(world->scenario.key_rng(), label);
  Status placed = harness::place_capsule(world->scenario, setup, *world->client,
                                         {world->server});
  if (!placed.ok()) {
    world->last_error = placed.to_string();
    return nullptr;
  }
  return new (std::nothrow) gdp_capsule(std::move(setup));
}

void gdp_capsule_destroy(gdp_capsule* capsule) { delete capsule; }

void gdp_capsule_name(const gdp_capsule* capsule, uint8_t name_out[32]) {
  if (capsule == nullptr || name_out == nullptr) return;
  std::memcpy(name_out, capsule->setup.metadata.name().raw().data(), 32);
}

int gdp_append(gdp_world* world, gdp_capsule* capsule, const uint8_t* data,
               size_t len, uint64_t* seqno_out) {
  if (world == nullptr || capsule == nullptr || (data == nullptr && len > 0)) {
    return GDP_ERR_INVALID;
  }
  auto op = world->client->append(capsule->writer, BytesView(data, len));
  auto outcome = client::await(world->scenario.sim(), op);
  if (!outcome.ok()) return fail(world, outcome.error());
  if (seqno_out != nullptr) *seqno_out = outcome->seqno;
  return GDP_OK;
}

int gdp_read(gdp_world* world, gdp_capsule* capsule, uint64_t seqno,
             uint8_t** data_out, size_t* len_out, uint64_t* seqno_out) {
  if (world == nullptr || capsule == nullptr || data_out == nullptr ||
      len_out == nullptr) {
    return GDP_ERR_INVALID;
  }
  auto op = world->client->read(capsule->setup.metadata, seqno, seqno);
  auto outcome = client::await(world->scenario.sim(), op);
  if (!outcome.ok()) return fail(world, outcome.error());
  const capsule::Record& rec = outcome->records.back();
  auto* buffer = static_cast<uint8_t*>(std::malloc(rec.payload.size()));
  if (buffer == nullptr && !rec.payload.empty()) return GDP_ERR_INTERNAL;
  std::memcpy(buffer, rec.payload.data(), rec.payload.size());
  *data_out = buffer;
  *len_out = rec.payload.size();
  if (seqno_out != nullptr) *seqno_out = rec.header.seqno;
  return GDP_OK;
}

void gdp_buffer_free(uint8_t* buffer) { std::free(buffer); }

uint64_t gdp_tip(gdp_world* world, gdp_capsule* capsule) {
  if (world == nullptr || capsule == nullptr) return 0;
  auto op = world->client->read_latest(capsule->setup.metadata);
  auto outcome = client::await(world->scenario.sim(), op);
  if (!outcome.ok()) {
    world->last_error = outcome.error().to_string();
    return 0;
  }
  return outcome->heartbeat.seqno;
}

int gdp_subscribe(gdp_world* world, gdp_capsule* capsule, gdp_event_fn callback,
                  void* user) {
  if (world == nullptr || capsule == nullptr || callback == nullptr) {
    return GDP_ERR_INVALID;
  }
  const TimePoint now = world->scenario.sim().now();
  trust::Cert cert = capsule->setup.sub_cert_for(
      world->client->name(), now, now + from_seconds(365.0 * 24 * 3600));
  auto op = world->client->subscribe(
      capsule->setup.metadata, cert,
      [callback, user](const capsule::Record& rec, const capsule::Heartbeat&) {
        callback(rec.header.seqno, rec.payload.data(), rec.payload.size(), user);
      });
  auto outcome = client::await(world->scenario.sim(), op);
  if (!outcome.ok()) return fail(world, outcome.error());
  return GDP_OK;
}

void gdp_run(gdp_world* world, double seconds) {
  if (world == nullptr || seconds <= 0) return;
  world->scenario.settle_for(from_seconds(seconds));
}

}  // extern "C"
