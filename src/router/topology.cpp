#include "router/topology.hpp"

#include <queue>

namespace gdp::router {

void Topology::add_router(const Name& router, const Name& domain) {
  domains_[router] = domain;
  adj_.try_emplace(router);
  cache_.clear();
}

void Topology::add_link(const Name& a, const Name& b, std::uint32_t cost_us) {
  adj_[a].emplace_back(b, cost_us);
  adj_[b].emplace_back(a, cost_us);
  cache_.clear();
}

Name Topology::domain_of(const Name& router) const {
  auto it = domains_.find(router);
  return it == domains_.end() ? Name{} : it->second;
}

void Topology::dijkstra(const Name& src) const {
  auto& table = cache_[src];
  table.clear();
  // (cost, node, first_hop_from_src)
  using Item = std::tuple<std::uint32_t, Name, Name>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  std::unordered_map<Name, std::uint32_t> best;
  pq.emplace(0, src, src);
  best[src] = 0;
  while (!pq.empty()) {
    auto [cost, node, first_hop] = pq.top();
    pq.pop();
    auto seen = table.find(node);
    if (seen != table.end()) continue;  // already settled
    table[node] = {first_hop, cost};
    auto adj_it = adj_.find(node);
    if (adj_it == adj_.end()) continue;
    for (const auto& [next, edge_cost] : adj_it->second) {
      std::uint32_t new_cost = cost + edge_cost;
      auto b = best.find(next);
      if (b != best.end() && b->second <= new_cost) continue;
      best[next] = new_cost;
      pq.emplace(new_cost, next, node == src ? next : first_hop);
    }
  }
}

std::optional<std::pair<Name, std::uint32_t>> Topology::route(const Name& from,
                                                              const Name& to) const {
  if (from == to) return std::make_pair(from, 0u);
  auto cached = cache_.find(from);
  if (cached == cache_.end()) {
    dijkstra(from);
    cached = cache_.find(from);
  }
  auto it = cached->second.find(to);
  if (it == cached->second.end()) return std::nullopt;
  return it->second;
}

}  // namespace gdp::router
