// Endpoint base: the client/server side of router attachment.
//
// DataCapsule-servers and clients both "connect to GDP-routers [and]
// advertise the names that they can service" (§VII).  Endpoint implements
// the advertiser's half of the secure-advertisement handshake — sending
// the naming catalog, answering the router's nonce challenge with a proof
// of key possession bound to that router, and issuing the RtCert — and
// offers derived classes a simple send_pdu() into the fabric.
#pragma once

#include <vector>

#include "net/network.hpp"
#include "trust/advertisement.hpp"
#include "trust/cert.hpp"
#include "trust/principal.hpp"
#include "wire/messages.hpp"

namespace gdp::router {

class Endpoint : public net::PduHandler {
 public:
  Endpoint(net::Network& net, const crypto::PrivateKey& key, trust::Role role,
           std::string label);

  const trust::Principal& principal() const { return self_; }
  const Name& name() const { return self_.name(); }
  const Name& router() const { return router_; }
  bool attached() const { return attached_; }

  /// Starts the secure-advertisement handshake toward `router` (the
  /// network link must already exist).  `catalog_records` are
  /// trust::Catalog payload encodings; empty for a bare client.
  /// `lease` bounds the RtCert validity.
  void advertise(const Name& router, std::vector<Bytes> catalog_records,
                 Duration lease = from_seconds(3600));

  void on_pdu(const Name& from, const wire::Pdu& pdu) final;
  /// View-path receive: handshake control messages (kChallenge /
  /// kAdvertiseOk) materialise into the legacy handler; data traffic goes
  /// to handle_pdu_view so sinks can consume payloads without a copy.
  void on_pdu_view(const Name& from, wire::PduView view) final;

  /// Access-link failure/recovery: on loss the endpoint is detached; on
  /// recovery it re-runs the secure-advertisement handshake (reattach())
  /// so the router — which withdrew its routes on the down edge — learns
  /// the names again ("re-establishment of DataCapsule-service", §VII).
  void on_link_state(const Name& neighbor, bool up) override;

 protected:
  /// Re-advertises after link recovery.  The base re-presents an empty
  /// catalog (bare principal); servers override to rebuild and re-present
  /// their full capsule catalog.
  virtual void reattach();
  /// Application-level messages (everything the base does not consume).
  virtual void handle_pdu(const Name& from, const wire::Pdu& pdu) = 0;
  /// Zero-copy variant; the default materialises into handle_pdu.
  /// Override to read the payload straight out of the wire segment.
  virtual void handle_pdu_view(const Name& from, wire::PduView view) {
    const wire::Pdu pdu = view.materialize();
    handle_pdu(from, pdu);
  }
  /// Called when the router accepts (or rejects) the advertisement.
  virtual void on_attached(bool ok, const wire::AdvertiseOkMsg& msg) { (void)ok; (void)msg; }

  /// Sends a PDU into the fabric via the attachment router.
  void send_pdu(const Name& dst, wire::MsgType type, Bytes payload,
                std::uint64_t flow_id = 0);
  std::uint64_t next_flow() { return next_flow_++; }

  net::Network& net_;
  crypto::PrivateKey key_;
  trust::Principal self_;

 private:
  Name router_;
  bool attached_ = false;
  Duration lease_ = from_seconds(3600);
  std::uint64_t next_flow_ = 1;
  telemetry::Counter& reattach_count_;

  // Telemetry handles (`endpoint.<label>.*`), resolved at construction.
  // Every PDU-discarding early exit increments a named drop counter.
  telemetry::Counter& recv_pdus_;
  telemetry::Counter& drop_bad_challenge_;
  telemetry::Counter& drop_malformed_;
  telemetry::Counter& drop_not_attached_;
};

}  // namespace gdp::router
