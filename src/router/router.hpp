// GDP-router: flat-namespace data plane + secure advertisement (§VII).
//
// The router forwards PDUs by 256-bit name using a local FIB.  Misses are
// resolved through the domain's GLookupService; replies carry the full
// delegation evidence, which the router re-verifies before installing a
// route — "people can not simply claim any name they desire".
//
// Attachment follows the paper's handshake: a client or DataCapsule-server
// sends its naming catalog, the router answers with a nonce challenge, the
// advertiser proves possession of its private key (signature over
// nonce || router name, which also prevents relaying the proof to another
// router) and issues an RtCert authorizing this router to speak for it.
// Only then are the advertised names installed and registered with the
// GLookupService.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "loadmgmt/health.hpp"
#include "loadmgmt/retry_budget.hpp"
#include "net/network.hpp"
#include "router/fib.hpp"
#include "router/glookup.hpp"
#include "router/topology.hpp"
#include "trust/advertisement.hpp"
#include "trust/cert.hpp"
#include "trust/principal.hpp"
#include "trust/verify_cache.hpp"

namespace gdp::router {

class Router : public net::PduHandler {
 public:
  /// Route-maintenance policy knobs ("optimized for transient failure and
  /// multi-path routing", §IV).  Tests tighten them to provoke the edge
  /// cases quickly; defaults suit the simulated WAN latencies.
  struct MaintenanceConfig {
    /// First lookup timeout; doubles on every retry (exponential backoff).
    Duration lookup_timeout = from_millis(250);
    /// Total tries per target (1 initial + retries) before the waiting
    /// queue is dropped with `drop.lookup_timeout`.
    std::uint32_t max_lookup_attempts = 4;
    /// Cap on PDUs parked per unresolved target; excess drops as
    /// `drop.queue_full` instead of growing without bound.
    std::size_t max_queued_per_target = 64;
    /// Periodic FIB / RtCert expiry sweep cadence (start_maintenance()).
    Duration sweep_interval = from_seconds(1);
    /// Retry-budget gate on lookup retries (envoy-style): each fresh
    /// lookup earns `retry_budget.ratio` tokens, each retry spends one,
    /// so a fleet-wide retry storm can never amplify offered load by more
    /// than the ratio.  Off (default) keeps the legacy fixed-attempt
    /// backoff; exhaustion drops the waiting queue under
    /// `drop.retry_budget_exhausted`.
    bool use_retry_budget = false;
    loadmgmt::RetryBudgetConfig retry_budget;
  };

  Router(net::Network& net, const crypto::PrivateKey& key, std::string label,
         Name domain, std::shared_ptr<const Topology> topology);

  /// Wires the domain's GLookupService (must also be a network neighbor).
  void set_glookup(GLookupService* glookup) { glookup_ = glookup; }

  /// Mutable policy access: adjust before traffic flows.
  MaintenanceConfig& maintenance() { return maintenance_; }

  /// Arms the lookup retry budget with `cfg` (and flips use_retry_budget
  /// on).  Call before traffic flows.
  void configure_retry_budget(const loadmgmt::RetryBudgetConfig& cfg) {
    maintenance_.use_retry_budget = true;
    maintenance_.retry_budget = cfg;
    lookup_retry_budget_ = loadmgmt::RetryBudget(cfg);
  }
  const loadmgmt::RetryBudget& lookup_retry_budget() const {
    return lookup_retry_budget_;
  }
  /// Passive per-neighbor health (link flaps eject next hops; recovery
  /// re-admits through probation).
  loadmgmt::HealthTracker& neighbor_health() { return neighbor_health_; }

  const Name& name() const { return self_.name(); }
  const trust::Principal& principal() const { return self_; }
  const Name& domain() const { return domain_; }

  void on_pdu(const Name& from, const wire::Pdu& pdu) override;
  /// Zero-copy receive: transit PDUs take the snapshot-FIB fast path
  /// (forward_view) and leave by send_view without ever materialising an
  /// owned Pdu; control traffic addressed to the router materialises into
  /// the legacy handlers.
  void on_pdu_view(const Name& from, wire::PduView view) override;

  /// Link-layer failure notification: the access link to `neighbor` went
  /// down.  Purges every route learned from that neighbor and withdraws
  /// the corresponding GLookupService registrations so anycast fails over
  /// to surviving replicas ("optimized for transient failure and
  /// re-establishment of DataCapsule-service", §VII).
  void neighbor_down(const Name& neighbor);
  /// The link came back.  The router keeps no tombstones — routes reappear
  /// through endpoint re-advertisement or fresh lookups — so this only
  /// accounts the recovery; it exists so chaos telemetry shows both edges.
  void neighbor_up(const Name& neighbor);
  /// Network link-state hook: maps carrier transitions onto
  /// neighbor_down/neighbor_up.
  void on_link_state(const Name& neighbor, bool up) override;

  // Periodic expiry sweep over FIB entries and RtCerts (stale entries are
  // also purged lazily on forward).  The loop self-reschedules every
  // `maintenance().sweep_interval` until stopped; tests may instead drive
  // maintenance_round() directly.
  void start_maintenance();
  void stop_maintenance() { maintenance_running_ = false; }
  /// One immediate sweep; returns the number of FIB entries expired.
  std::size_t maintenance_round();

  // Statistics (Figure 6 measures the forwarding path).  All live in the
  // network's MetricsRegistry under `router.<label>.*`; these accessors
  // read the same registry counters.
  std::uint64_t pdus_forwarded() const { return forwarded_.value(); }
  std::uint64_t pdus_dropped() const { return dropped_.value(); }
  std::uint64_t lookups_issued() const { return lookups_issued_.value(); }
  std::uint64_t lookup_retries() const { return lookup_retries_.value(); }
  std::uint64_t lookup_timeouts() const { return lookup_timeouts_.value(); }
  std::uint64_t fib_expired() const { return fib_expired_.value(); }
  std::size_t fib_size() const { return fib_.size(); }
  std::uint64_t advertisements_accepted() const { return ads_accepted_.value(); }
  std::uint64_t advertisements_rejected() const { return ads_rejected_.value(); }
  /// Verification-cache effectiveness: hits are ECDSA verifications the
  /// router skipped on re-advertisements and repeated delegation chains.
  std::uint64_t verify_cache_hits() const { return verify_cache_.hits(); }
  std::uint64_t verify_cache_misses() const { return verify_cache_.misses(); }
  void set_verify_cache_capacity(std::size_t n) {
    verify_cache_pinned_ = true;
    verify_cache_.set_capacity(n);
  }

  /// Publishes sampled gauges (FIB size, verify-cache hit/miss/occupancy)
  /// into the registry; called by stats dumpers before serializing.
  void publish_metrics();

  /// This router's full stats scope (`router.<label>.*`) as sorted JSON.
  /// Gauges are refreshed first; output is byte-identical across reruns
  /// for identical traffic, and matches what ShardedDataPlane emits after
  /// merging per-shard registries — the single source of truth for drop
  /// accounting regardless of how many workers produced it.
  std::string stats_json(int indent = 2);

  /// The snapshot-FIB publisher: tests exercise concurrent readers
  /// against it, and the sharded data plane registers its workers here.
  FibPublisher& fib() { return fib_; }

  /// Direct FIB inspection for tests: a route exists and has not expired.
  bool has_route(const Name& target) const;
  /// PDUs parked behind unresolved lookups — must be zero at teardown
  /// (every queue either drains on reply or drops with a named reason).
  std::size_t awaiting_route_count() const;
  /// Lookups currently awaiting a reply or retry timer.
  std::size_t pending_lookup_count() const { return pending_lookups_.size(); }
  /// RtCerts currently held (one per completed handshake, purged on
  /// neighbor_down by advertiser name and on expiry by the sweep).
  std::size_t rt_cert_count() const { return rt_certs_.size(); }
  /// Distinct targets learned from `neighbor`'s advertisements (deduped).
  std::size_t attached_targets(const Name& neighbor) const {
    auto it = attached_via_.find(neighbor);
    return it == attached_via_.end() ? 0 : it->second.size();
  }
  /// Catalog records that failed to parse/verify during advertisements.
  std::uint64_t bad_catalog_records() const { return bad_catalog_records_.value(); }

 private:
  struct PendingAd {
    Name neighbor;
    trust::Principal advertiser;
    std::vector<Bytes> catalog_records;
    Bytes nonce;
  };

  /// One outstanding lookup: the nonce binding replies to this request
  /// (unsolicited or stale replies are discarded), the attempt count and
  /// the backoff timer.
  struct PendingLookup {
    std::uint64_t nonce = 0;
    std::uint32_t attempts = 0;
    net::Simulator::TimerHandle timer;
  };

  bool route_expired(std::int64_t expires_ns) const {
    return expires_ns > 0 && expires_ns < net_.sim().now().count();
  }

  /// Control traffic addressed to this router (the switch formerly inside
  /// on_pdu); both receive entry points funnel here.
  void handle_control(const Name& from, const wire::Pdu& pdu);
  void forward(wire::Pdu pdu);
  /// Snapshot-FIB fast path: TTL patch + lock-free lookup + send_view.
  /// Misses and expired hits materialise into forward_slow.
  void forward_view(wire::PduView pdu);
  /// Everything forwarding that mutates state (lazy expiry purge,
  /// queue-on-miss, lookup kick-off).  Expects the TTL already checked
  /// and decremented by the caller.
  void forward_slow(wire::Pdu pdu);
  /// Drop accounting: every code path that discards a PDU funnels through
  /// here so silent drops are impossible — the reason becomes a counter
  /// (`router.<label>.drop.<reason>`) and a trace span.
  void drop_pdu(const wire::Pdu& pdu, telemetry::Counter& reason_counter,
                const char* reason);
  void drop_pdu(std::uint64_t trace_id, telemetry::Counter& reason_counter,
                const char* reason);
  /// Grows (never shrinks) the verify cache to 2x the advertised-name
  /// cardinality, unless a test pinned the capacity explicitly.
  void autosize_verify_cache();
  /// Starts a lookup for `target` unless one is already in flight.
  void start_lookup(const Name& target);
  /// Sends the (re)issued lookup PDU and arms the backoff timer.
  void issue_lookup(const Name& target);
  void on_lookup_timeout(const Name& target);
  /// Drops (with accounting) every PDU parked for `target` and erases the
  /// queue; used by terminal lookup failures.
  void drop_waiting_queue(const Name& target, telemetry::Counter& reason_counter,
                          const char* reason);
  void schedule_maintenance();
  void handle_advertise(const Name& from, const wire::Pdu& pdu);
  void handle_challenge_reply(const Name& from, const wire::Pdu& pdu);
  void handle_lookup_reply(const wire::Pdu& pdu);
  void send_advertise_ok(const Name& to, bool ok, std::string message,
                         std::uint32_t accepted);

  net::Network& net_;
  trust::Principal self_;
  Name domain_;
  std::shared_ptr<const Topology> topology_;
  GLookupService* glookup_ = nullptr;

  MaintenanceConfig maintenance_;
  bool maintenance_running_ = false;
  loadmgmt::RetryBudget lookup_retry_budget_;
  loadmgmt::HealthTracker neighbor_health_;

  /// Authoritative routes + published immutable snapshots.  Control-plane
  /// handlers mutate and publish(); forwarding reads the snapshot only.
  FibPublisher fib_;
  /// Targets learned from each directly attached advertiser (for
  /// neighbor_down withdrawal).
  std::unordered_map<Name, std::vector<Name>> attached_via_;
  std::unordered_map<Name, std::vector<wire::Pdu>> awaiting_route_;
  /// Outstanding lookups, keyed by target (one in flight per target).
  std::unordered_map<Name, PendingLookup> pending_lookups_;
  /// In-flight advertisement handshakes, keyed by flow id so overlapping
  /// (re-)advertisements from the same endpoint do not clobber each other.
  std::unordered_map<std::uint64_t, PendingAd> pending_ads_;
  std::unordered_map<Name, trust::Cert> rt_certs_;   ///< issued to us, by machine
  /// Memoizes delegation-chain signature verdicts (challenge-nonce
  /// signatures are never cached: each handshake uses a fresh nonce).
  trust::VerifyCache verify_cache_;
  bool verify_cache_pinned_ = false;  ///< capacity fixed by a test
  /// Seed for batch-verification coefficients (drawn from the simulation
  /// RNG at construction, so runs are reproducible).
  std::uint64_t batch_seed_ = 0;

  // Telemetry handles, resolved once against the network registry.
  std::string metric_prefix_;  ///< "router.<label>."
  telemetry::Counter& forwarded_;
  telemetry::Counter& dropped_;
  telemetry::Counter& lookups_issued_;
  telemetry::Counter& lookup_retries_;
  telemetry::Counter& lookup_timeouts_;
  telemetry::Counter& ads_accepted_;
  telemetry::Counter& ads_rejected_;
  telemetry::Counter& fib_hits_;
  telemetry::Counter& fib_misses_;
  telemetry::Counter& fib_expired_;
  telemetry::Counter& neighbor_down_events_;
  telemetry::Counter& neighbor_up_events_;
  telemetry::Counter& bad_catalog_records_;
  telemetry::Counter& drop_ttl_;
  telemetry::Counter& drop_no_route_;
  telemetry::Counter& drop_no_glookup_;
  telemetry::Counter& drop_bad_evidence_;
  telemetry::Counter& drop_stale_route_;
  telemetry::Counter& drop_next_hop_down_;
  telemetry::Counter& drop_malformed_;
  telemetry::Counter& drop_unhandled_;
  telemetry::Counter& drop_queue_full_;
  telemetry::Counter& drop_lookup_timeout_;
  telemetry::Counter& drop_unsolicited_reply_;
  telemetry::Counter& drop_retry_budget_;
  telemetry::Counter& p2c_picks_;
  telemetry::Counter& p2c_alternate_chosen_;
  telemetry::Counter& load_reports_relayed_;
  telemetry::Counter& batch_accepted_;
  telemetry::Counter& batch_rejected_;
  telemetry::Counter& batch_bisections_;
  telemetry::Histogram& batch_size_;
};

}  // namespace gdp::router
