// GDP-router: flat-namespace data plane + secure advertisement (§VII).
//
// The router forwards PDUs by 256-bit name using a local FIB.  Misses are
// resolved through the domain's GLookupService; replies carry the full
// delegation evidence, which the router re-verifies before installing a
// route — "people can not simply claim any name they desire".
//
// Attachment follows the paper's handshake: a client or DataCapsule-server
// sends its naming catalog, the router answers with a nonce challenge, the
// advertiser proves possession of its private key (signature over
// nonce || router name, which also prevents relaying the proof to another
// router) and issues an RtCert authorizing this router to speak for it.
// Only then are the advertised names installed and registered with the
// GLookupService.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "net/network.hpp"
#include "router/glookup.hpp"
#include "router/topology.hpp"
#include "trust/advertisement.hpp"
#include "trust/cert.hpp"
#include "trust/principal.hpp"
#include "trust/verify_cache.hpp"

namespace gdp::router {

class Router : public net::PduHandler {
 public:
  Router(net::Network& net, const crypto::PrivateKey& key, std::string label,
         Name domain, std::shared_ptr<const Topology> topology);

  /// Wires the domain's GLookupService (must also be a network neighbor).
  void set_glookup(GLookupService* glookup) { glookup_ = glookup; }

  const Name& name() const { return self_.name(); }
  const trust::Principal& principal() const { return self_; }
  const Name& domain() const { return domain_; }

  void on_pdu(const Name& from, const wire::Pdu& pdu) override;

  /// Link-layer failure notification: the access link to `neighbor` went
  /// down.  Purges every route learned from that neighbor and withdraws
  /// the corresponding GLookupService registrations so anycast fails over
  /// to surviving replicas ("optimized for transient failure and
  /// re-establishment of DataCapsule-service", §VII).
  void neighbor_down(const Name& neighbor);

  // Statistics (Figure 6 measures the forwarding path).  All live in the
  // network's MetricsRegistry under `router.<label>.*`; these accessors
  // read the same registry counters.
  std::uint64_t pdus_forwarded() const { return forwarded_.value(); }
  std::uint64_t pdus_dropped() const { return dropped_.value(); }
  std::uint64_t lookups_issued() const { return lookups_issued_.value(); }
  std::size_t fib_size() const { return fib_.size(); }
  std::uint64_t advertisements_accepted() const { return ads_accepted_.value(); }
  std::uint64_t advertisements_rejected() const { return ads_rejected_.value(); }
  /// Verification-cache effectiveness: hits are ECDSA verifications the
  /// router skipped on re-advertisements and repeated delegation chains.
  std::uint64_t verify_cache_hits() const { return verify_cache_.hits(); }
  std::uint64_t verify_cache_misses() const { return verify_cache_.misses(); }
  void set_verify_cache_capacity(std::size_t n) {
    verify_cache_pinned_ = true;
    verify_cache_.set_capacity(n);
  }

  /// Publishes sampled gauges (FIB size, verify-cache hit/miss/occupancy)
  /// into the registry; called by stats dumpers before serializing.
  void publish_metrics();

  /// Direct FIB inspection for tests.
  bool has_route(const Name& target) const { return fib_.contains(target); }

 private:
  struct PendingAd {
    Name neighbor;
    trust::Principal advertiser;
    std::vector<Bytes> catalog_records;
    Bytes nonce;
  };

  void forward(wire::Pdu pdu);
  /// Drop accounting: every code path that discards a PDU funnels through
  /// here so silent drops are impossible — the reason becomes a counter
  /// (`router.<label>.drop.<reason>`) and a trace span.
  void drop_pdu(const wire::Pdu& pdu, telemetry::Counter& reason_counter,
                const char* reason);
  /// Grows (never shrinks) the verify cache to 2x the advertised-name
  /// cardinality, unless a test pinned the capacity explicitly.
  void autosize_verify_cache();
  void start_lookup(const Name& target);
  void handle_advertise(const Name& from, const wire::Pdu& pdu);
  void handle_challenge_reply(const Name& from, const wire::Pdu& pdu);
  void handle_lookup_reply(const wire::Pdu& pdu);
  void send_advertise_ok(const Name& to, bool ok, std::string message,
                         std::uint32_t accepted);

  net::Network& net_;
  trust::Principal self_;
  Name domain_;
  std::shared_ptr<const Topology> topology_;
  GLookupService* glookup_ = nullptr;

  std::unordered_map<Name, Name> fib_;  ///< target -> next-hop neighbor
  /// Targets learned from each directly attached advertiser (for
  /// neighbor_down withdrawal).
  std::unordered_map<Name, std::vector<Name>> attached_via_;
  std::unordered_map<Name, std::vector<wire::Pdu>> awaiting_route_;
  /// In-flight advertisement handshakes, keyed by flow id so overlapping
  /// (re-)advertisements from the same endpoint do not clobber each other.
  std::unordered_map<std::uint64_t, PendingAd> pending_ads_;
  std::unordered_map<Name, trust::Cert> rt_certs_;   ///< issued to us, by machine
  /// Memoizes delegation-chain signature verdicts (challenge-nonce
  /// signatures are never cached: each handshake uses a fresh nonce).
  trust::VerifyCache verify_cache_;
  bool verify_cache_pinned_ = false;  ///< capacity fixed by a test

  // Telemetry handles, resolved once against the network registry.
  std::string metric_prefix_;  ///< "router.<label>."
  telemetry::Counter& forwarded_;
  telemetry::Counter& dropped_;
  telemetry::Counter& lookups_issued_;
  telemetry::Counter& ads_accepted_;
  telemetry::Counter& ads_rejected_;
  telemetry::Counter& fib_hits_;
  telemetry::Counter& fib_misses_;
  telemetry::Counter& drop_ttl_;
  telemetry::Counter& drop_no_route_;
  telemetry::Counter& drop_no_glookup_;
  telemetry::Counter& drop_bad_evidence_;
  telemetry::Counter& drop_stale_route_;
  telemetry::Counter& drop_next_hop_down_;
  telemetry::Counter& drop_malformed_;
  telemetry::Counter& drop_unhandled_;
};

}  // namespace gdp::router
