#include "router/fib.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

namespace gdp::router {
namespace {

// Names are SHA-256 outputs, so the first 8 bytes are already uniform;
// the multiply spreads that entropy into the low bits the slot mask keeps.
std::uint64_t hash_name(const std::uint8_t* p) {
  std::uint64_t h;
  std::memcpy(&h, p, sizeof(h));
  return h * 0x9E3779B97F4A7C15ull;
}

}  // namespace

const FibSnapshot::Entry* FibSnapshot::find(BytesView target) const {
  if (entries_.empty() || target.size() != Name::kSize) return nullptr;
  std::size_t slot = static_cast<std::size_t>(hash_name(target.data())) & mask_;
  for (;;) {
    const std::uint32_t idx = slots_[slot];
    if (idx == 0) return nullptr;
    const Entry& e = entries_[idx - 1];
    if (std::memcmp(e.target.raw().data(), target.data(), Name::kSize) == 0) {
      return &e;
    }
    slot = (slot + 1) & mask_;
  }
}

FibPublisher::FibPublisher() {
  // Always expose a (possibly empty) snapshot so readers never branch on
  // nullptr in the hot path.
  owned_current_ = build(map_, 0);
  current_.store(owned_current_.get(), std::memory_order_release);
}

FibPublisher::~FibPublisher() = default;

void FibPublisher::upsert(const Name& target, const Name& next_hop,
                          std::int64_t expires_ns) {
  map_[target] = Route{next_hop, expires_ns};
  dirty_ = true;
}

bool FibPublisher::erase(const Name& target) {
  if (map_.erase(target) == 0) return false;
  dirty_ = true;
  return true;
}

std::unique_ptr<const FibSnapshot> FibPublisher::build(
    const std::unordered_map<Name, Route>& map, std::uint64_t version) {
  auto snap = std::make_unique<FibSnapshot>();
  snap->version_ = version;
  snap->entries_.reserve(map.size());
  for (const auto& [target, route] : map) {
    snap->entries_.push_back(
        FibSnapshot::Entry{target, route.next_hop, route.expires_ns});
  }
  // >= 2x entries keeps the load factor under 0.5 so linear probes stay
  // short; minimum 16 slots avoids degenerate tiny tables.
  const std::size_t want = std::max<std::size_t>(16, 2 * snap->entries_.size());
  const std::size_t slots = std::bit_ceil(want);
  snap->slots_.assign(slots, 0);
  snap->mask_ = slots - 1;
  for (std::uint32_t i = 0; i < snap->entries_.size(); ++i) {
    std::size_t slot =
        static_cast<std::size_t>(hash_name(snap->entries_[i].target.raw().data())) &
        snap->mask_;
    while (snap->slots_[slot] != 0) slot = (slot + 1) & snap->mask_;
    snap->slots_[slot] = i + 1;
  }
  return snap;
}

void FibPublisher::publish() {
  if (!dirty_) {
    reclaim();
    return;
  }
  dirty_ = false;
  ++publish_count_;
  auto next = build(map_, publish_count_);
  const FibSnapshot* next_raw = next.get();
  std::unique_ptr<const FibSnapshot> old = std::move(owned_current_);
  owned_current_ = std::move(next);
  current_.store(next_raw, std::memory_order_release);
  // The retirement epoch is published *after* the swap: any reader that
  // later announces this epoch observed it after the store above, hence
  // can no longer be dereferencing `old`.
  const std::uint64_t epoch =
      publish_epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  retired_.push_back(Retired{epoch, std::move(old)});
  reclaim();
}

void FibPublisher::reclaim() {
  if (retired_.empty()) return;
  std::uint64_t min_epoch = ~std::uint64_t{0};
  for (const auto& r : readers_) {
    min_epoch = std::min(min_epoch, r->epoch_.load(std::memory_order_acquire));
  }
  std::size_t keep = 0;
  for (auto& r : retired_) {
    if (r.epoch > min_epoch) retired_[keep++] = std::move(r);
  }
  reclaimed_count_ += retired_.size() - keep;
  retired_.resize(keep);
}

void FibPublisher::publish_stats(telemetry::MetricsRegistry& m,
                                 const std::string& prefix) const {
  m.counter(prefix + "fib.size").set(map_.size());
  m.counter(prefix + "fib.publishes").set(publish_count_);
  m.counter(prefix + "fib.retired_pending").set(retired_.size());
  m.counter(prefix + "fib.reclaimed").set(reclaimed_count_);
  m.counter(prefix + "fib.readers").set(readers_.size());
}

FibPublisher::Reader* FibPublisher::register_reader() {
  readers_.push_back(std::unique_ptr<Reader>(new Reader(this)));
  return readers_.back().get();
}

}  // namespace gdp::router
