#include "router/endpoint.hpp"

#include "common/log.hpp"

namespace gdp::router {

Endpoint::Endpoint(net::Network& net, const crypto::PrivateKey& key,
                   trust::Role role, std::string label)
    : net_(net),
      key_(key),
      self_(trust::Principal::create(key, role, std::move(label))),
      recv_pdus_(net_.metrics().counter(
          "endpoint." + std::string(self_.label()) + ".recv.pdus")),
      drop_bad_challenge_(net_.metrics().counter(
          "endpoint." + std::string(self_.label()) + ".drop.bad_challenge")),
      drop_malformed_(net_.metrics().counter(
          "endpoint." + std::string(self_.label()) + ".drop.malformed")),
      drop_not_attached_(net_.metrics().counter(
          "endpoint." + std::string(self_.label()) + ".drop.not_attached")),
      reattach_count_(net_.metrics().counter(
          "endpoint." + std::string(self_.label()) + ".reattaches")) {
  net_.attach(self_.name(), this);
}

void Endpoint::on_link_state(const Name& neighbor, bool up) {
  if (router_.is_zero() || neighbor != router_) return;
  if (!up) {
    // The router withdrew our routes on its down edge; until the handshake
    // re-runs, we are off the fabric.
    attached_ = false;
    return;
  }
  reattach_count_.inc();
  reattach();
}

void Endpoint::reattach() { advertise(router_, {}, lease_); }

void Endpoint::advertise(const Name& router, std::vector<Bytes> catalog_records,
                         Duration lease) {
  router_ = router;
  lease_ = lease;
  attached_ = false;
  wire::AdvertiseMsg msg;
  msg.principal = self_.serialize();
  msg.catalog_records = std::move(catalog_records);
  wire::Pdu pdu;
  pdu.dst = router;
  pdu.src = self_.name();
  pdu.type = wire::MsgType::kAdvertise;
  pdu.flow_id = next_flow();
  pdu.payload = msg.serialize();
  net_.send(self_.name(), router, std::move(pdu));
}

void Endpoint::on_pdu(const Name& from, const wire::Pdu& pdu) {
  recv_pdus_.inc();
  net_.trace().record(pdu.trace_id, self_.name(), "recv");
  switch (pdu.type) {
    case wire::MsgType::kChallenge: {
      auto challenge = wire::ChallengeMsg::deserialize(pdu.payload);
      if (!challenge.ok() || from != router_) {
        drop_bad_challenge_.inc();
        net_.trace().record(pdu.trace_id, self_.name(), "drop", "bad_challenge");
        return;
      }
      // Sign (nonce || router name): proves key possession and binds the
      // proof to this router so it cannot be relayed elsewhere.
      Bytes payload = concat(challenge->nonce, router_.bytes());
      wire::ChallengeReplyMsg reply;
      reply.principal = self_.serialize();
      reply.nonce_sig = key_.sign(payload).encode();
      const TimePoint now = net_.sim().now();
      reply.rt_cert =
          trust::make_rt_cert(key_, self_.name(), router_, now, now + lease_)
              .serialize();
      wire::Pdu out;
      out.dst = router_;
      out.src = self_.name();
      out.type = wire::MsgType::kChallengeReply;
      out.flow_id = pdu.flow_id;
      out.payload = reply.serialize();
      net_.send(self_.name(), router_, std::move(out));
      return;
    }
    case wire::MsgType::kAdvertiseOk: {
      auto ok_msg = wire::AdvertiseOkMsg::deserialize(pdu.payload);
      if (!ok_msg.ok()) {
        drop_malformed_.inc();
        net_.trace().record(pdu.trace_id, self_.name(), "drop", "malformed");
        return;
      }
      attached_ = ok_msg->ok;
      on_attached(ok_msg->ok, *ok_msg);
      return;
    }
    default:
      net_.trace().record(pdu.trace_id, self_.name(), "deliver");
      handle_pdu(from, pdu);
  }
}

void Endpoint::on_pdu_view(const Name& from, wire::PduView view) {
  switch (view.type()) {
    case wire::MsgType::kChallenge:
    case wire::MsgType::kAdvertiseOk: {
      // Handshake control plane: tiny, rare, and handled by the legacy
      // parser — materialising here keeps one copy of that logic.
      const wire::Pdu pdu = view.materialize();
      on_pdu(from, pdu);
      return;
    }
    default:
      // Mirrors on_pdu's accounting for the delivery path exactly.
      recv_pdus_.inc();
      net_.trace().record(view.trace_id(), self_.name(), "recv");
      net_.trace().record(view.trace_id(), self_.name(), "deliver");
      handle_pdu_view(from, std::move(view));
  }
}

void Endpoint::send_pdu(const Name& dst, wire::MsgType type, Bytes payload,
                        std::uint64_t flow_id) {
  wire::Pdu pdu;
  pdu.dst = dst;
  pdu.src = self_.name();
  pdu.type = type;
  pdu.flow_id = flow_id == 0 ? next_flow() : flow_id;
  pdu.payload = std::move(payload);
  if (router_.is_zero()) {
    GDP_LOG(kWarn, "endpoint") << "send_pdu before advertise()";
    drop_not_attached_.inc();
    net_.trace().record(pdu.trace_id, self_.name(), "drop", "not_attached");
    return;
  }
  net_.send(self_.name(), router_, std::move(pdu));
}

}  // namespace gdp::router
