// GLookupService: the hierarchical, verifiable name-lookup database (§VII).
//
// One GLookupService per routing domain, linked into a tree whose root is
// the global GLookupService ("roughly a tier-1 service provider").  A
// router that cannot resolve a name asks its domain's service; a miss
// propagates to the parent, and so on.  Registrations acquired during
// secure advertisement are pushed *up* the tree (for publicly routable
// names), carrying the full delegation evidence so every level can verify
// the entry independently — "the returned information is independently
// verifiable", unlike DNS.  Capsule placement policy (AdCert
// allowed_domains) stops both propagation and resolution at domain
// borders.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "loadmgmt/health.hpp"
#include "net/network.hpp"
#include "router/topology.hpp"
#include "trust/advertisement.hpp"
#include "trust/principal.hpp"
#include "trust/verify_cache.hpp"
#include "wire/messages.hpp"

namespace gdp::router {

class GLookupService : public net::PduHandler {
 public:
  struct Entry {
    Name target;
    Name attachment_router;
    Bytes evidence;      ///< serialized trust::Advertisement ("" for principals)
    Bytes principal;     ///< serialized advertiser principal
    std::int64_t expires_ns = 0;
    std::vector<Name> allowed_domains;  ///< empty = publicly routable
    /// Advertiser name (the serving server for capsules), derived from
    /// `principal` at registration: the key health signals are tracked by.
    Name advertiser;
  };

  /// Load-aware replica selection (off by default: replies are the legacy
  /// single min-cost entry and stats stay byte-identical).
  struct SelectionConfig {
    bool enabled = false;
    /// Replicas carried per reply (primary + alternates).
    std::size_t max_replicas = 4;
    /// FIB lease when a target has more than one eligible replica: routers
    /// re-resolve at this cadence so traffic redistributes away from
    /// ejected or slow replicas (low-TTL-DNS style).
    Duration route_lease = from_millis(500);
    /// Score floor for targets with no latency samples yet.
    std::uint64_t default_latency_ns = 1000000;
    loadmgmt::HealthConfig health;
  };

  GLookupService(net::Network& net, trust::Principal self, Name domain,
                 std::shared_ptr<const Topology> topology);

  const Name& name() const { return self_.name(); }
  const Name& domain() const { return domain_; }
  const trust::Principal& principal() const { return self_; }

  /// Wires this service under `parent` (nullptr for the global root).
  /// The caller must also create the network link between the two.
  /// Child levels adopt the root's VerifyCache: upward propagation
  /// re-verifies the same delegation chains at every level, and a shared
  /// cache collapses those to one miss total (ROADMAP follow-on).
  void set_parent(GLookupService* parent) {
    parent_ = parent;
    if (parent != nullptr) verify_cache_ = parent->verify_cache_;
  }

  /// Called by routers in this domain after a successful secure
  /// advertisement.  Re-verifies evidence before accepting, then
  /// propagates upward where the placement policy allows.
  Status register_entry(Entry entry);

  /// Entries currently registered for `target` (expired ones skipped).
  std::vector<const Entry*> lookup_local(const Name& target) const;

  /// Withdraws one target's entry at `attachment_router` (its advertiser's
  /// access link went down).  Propagates up the hierarchy.
  void unregister(const Name& target, const Name& attachment_router);

  /// Withdraws every entry attached at `attachment_router` (the router
  /// detected its advertiser's link as down, or is itself shutting down).
  /// The withdrawal propagates up the hierarchy like registration did.
  void unregister_attachment(const Name& attachment_router);

  void on_pdu(const Name& from, const wire::Pdu& pdu) override;

  /// Enables (or reconfigures) load-aware selection.  Resets health state;
  /// call before traffic starts.
  void set_selection(const SelectionConfig& cfg) {
    selection_ = cfg;
    health_ = loadmgmt::HealthTracker(cfg.health);
  }
  const SelectionConfig& selection() const { return selection_; }
  /// Health tracker over advertisers (servers); tests inject signals here.
  loadmgmt::HealthTracker& health() { return health_; }

  /// Ingests one server pressure report (relayed by the attachment
  /// router) and forwards it up the lookup tree so every level ranks with
  /// the same signal.
  void apply_load_report(const wire::LoadReportMsg& msg);

  // Introspection for tests.
  std::size_t entry_count() const;
  std::uint64_t queries_served() const { return queries_served_.value(); }
  std::uint64_t queries_escalated() const { return queries_escalated_.value(); }
  std::uint64_t verify_cache_hits() const { return verify_cache_->hits(); }
  std::uint64_t verify_cache_misses() const { return verify_cache_->misses(); }
  void set_verify_cache_capacity(std::size_t n) {
    verify_cache_pinned_ = true;
    verify_cache_->set_capacity(n);
  }

  /// Publishes sampled gauges (entry count, verify-cache hit/miss) into the
  /// registry; called by stats dumpers before serializing.
  void publish_metrics();

 private:
  struct PendingQuery {
    Name requester;       ///< neighbor (router or child glookup) to answer
    wire::LookupMsg msg;  ///< original query
  };

  Status verify_entry(const Entry& entry) const;
  /// Grows (never shrinks) the verify cache to 2x the registered-entry
  /// cardinality, unless a test pinned the capacity explicitly.
  void autosize_verify_cache();
  void answer(const Name& reply_to, const wire::LookupMsg& query);
  /// Builds a reply for `query` from local entries; found=false when none.
  /// Non-const: scoring lazily promotes ejected targets into probation.
  wire::LookupReplyMsg build_reply(const wire::LookupMsg& query);
  void send_reply(const Name& to, const wire::LookupReplyMsg& reply,
                  std::uint64_t flow_id);

  net::Network& net_;
  trust::Principal self_;
  Name domain_;
  std::shared_ptr<const Topology> topology_;
  GLookupService* parent_ = nullptr;

  std::unordered_map<Name, std::vector<Entry>> entries_;
  /// Registration/refresh re-verifies the same evidence chains; the cache
  /// makes refreshes cheap.  Shared across the whole lookup tree (every
  /// level re-verifies the chains that propagate upward): set_parent
  /// replaces a child's cache with the root's.
  std::shared_ptr<trust::VerifyCache> verify_cache_ =
      std::make_shared<trust::VerifyCache>();
  bool verify_cache_pinned_ = false;  ///< capacity fixed by a test
  /// Seed for batch-verification coefficients (drawn from the simulation
  /// RNG at construction, so runs are reproducible).
  std::uint64_t batch_seed_ = 0;
  std::unordered_map<std::uint64_t, PendingQuery> pending_;  // by nonce
  std::uint64_t next_nonce_ = 1;
  SelectionConfig selection_;
  loadmgmt::HealthTracker health_;

  // Telemetry handles (`glookup.<label>.*`), resolved at construction.
  std::string metric_prefix_;
  telemetry::Counter& queries_served_;
  telemetry::Counter& queries_escalated_;
  telemetry::Counter& registrations_;
  telemetry::Counter& drop_malformed_;
  telemetry::Counter& drop_stale_reply_;
  telemetry::Counter& drop_unhandled_;
  telemetry::Counter& batch_accepted_;
  telemetry::Counter& batch_rejected_;
  telemetry::Counter& batch_bisections_;
  telemetry::Counter& ranked_replies_;
  telemetry::Counter& ejected_skipped_;
  telemetry::Counter& panic_replies_;
  telemetry::Counter& load_reports_;
  telemetry::Histogram& batch_size_;
};

}  // namespace gdp::router
