// Router-graph topology shared by the GLookupService hierarchy.
//
// "Within a routing domain, all routing information is kept in a shared
// database ... Such a model is similar to those of SDNs, where an
// SDN-controller plays a similar role to the GLookupService" (§VII).  The
// controller knows the router graph (routers, their domains, inter-router
// link costs) and computes next hops with Dijkstra; routers themselves
// keep only a FIB cache.  Name *resolution* stays hierarchical — the
// per-domain / parent / global GLookupServices each hold only the names
// registered with (or propagated to) them.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/name.hpp"

namespace gdp::router {

class Topology {
 public:
  void add_router(const Name& router, const Name& domain);
  void add_link(const Name& a, const Name& b, std::uint32_t cost_us);

  /// Next hop from `from` toward `to` and total path cost; nullopt when
  /// unreachable.  Results are cached per source until the topology
  /// changes.
  std::optional<std::pair<Name, std::uint32_t>> route(const Name& from,
                                                      const Name& to) const;

  /// The routing domain a router belongs to (zero Name if unknown).
  Name domain_of(const Name& router) const;

  std::size_t router_count() const { return domains_.size(); }

 private:
  void dijkstra(const Name& src) const;

  std::unordered_map<Name, std::vector<std::pair<Name, std::uint32_t>>> adj_;
  std::unordered_map<Name, Name> domains_;
  // src -> (dst -> (first hop, cost))
  mutable std::unordered_map<Name, std::unordered_map<Name, std::pair<Name, std::uint32_t>>>
      cache_;
};

}  // namespace gdp::router
