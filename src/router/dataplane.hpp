// Sharded multi-worker forwarding engine.
//
// The real-threads backend of the router tier: N shard workers, each an
// independent event loop over bounded SPSC rings, forwarding PduViews by
// lock-free lookups against the FibPublisher's immutable snapshots.  The
// design mirrors a modern userspace router:
//
//   * Ingress spreads PDUs round-robin across the shards' ingress rings
//     (the role RSS plays on a NIC — the spreader does not inspect names).
//   * Name ownership is determined by a seeded hash of the destination:
//     shard_of(dst).  A worker that pops a PDU it does not own hands it to
//     the owner over the dedicated (worker -> owner) SPSC ring, so every
//     cross-shard path is single-producer/single-consumer and lock-free.
//   * The owning worker does the snapshot-FIB lookup, patches the TTL in
//     place (the segment is singly-referenced in steady state, so the
//     copy-on-write patch never copies), and emits the frame through the
//     egress hook — payload bytes are never touched.
//   * Workers quiesce their QSBR reader slot between batches; the control
//     plane can upsert + publish() concurrently and the old snapshot is
//     reclaimed only after every worker has moved past it.
//
// Two execution modes behind one interface:
//   threaded       one std::thread per shard (start()/stop()); batching
//                  plus sched_yield keeps the loop honest when shards
//                  timeshare a core.
//   deterministic  no threads: run_until_idle() drives the shards in
//                  lockstep on the calling thread, draining rings in a
//                  fixed order — byte-identical stats for identical input
//                  sequences.  Selected by Config::deterministic or the
//                  GDP_DETERMINISTIC environment variable.
//
// Observability (the flight-recorder pipeline):
//   * Per-shard MetricsRegistries hold the deterministic instruments —
//     counters, drop reasons, stall counters, ring-occupancy and
//     batch-size histograms; stats_json() merges them in shard order so
//     the aggregate is byte-stable no matter how many workers produced it.
//   * Each worker (plus the single ingress producer) owns a FlightRecorder
//     track: a lock-free event ring of wall-clock timestamped fast-path
//     events (submit, dequeue, fib_lookup, forward spans, handoffs,
//     drops, stalls) behind a seeded counter-sampling gate, exportable as
//     a Perfetto timeline (perfetto_json()).
//   * Wall-clock latency histograms live in a *segregated* per-shard
//     registry exported by wall_json() — never merged into stats_json, so
//     deterministic reruns still diff clean byte-for-byte.
//   * sample_pressure() appends live ring occupancy / high-water and
//     buffer-pool gauges to a StatsTimeline; a TelemetryPoller thread
//     drives it periodically while workers run.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/spsc_ring.hpp"
#include "router/fib.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/timeline.hpp"
#include "wire/pdu_view.hpp"

namespace gdp::router {

class ShardedDataPlane {
 public:
  struct Config {
    std::size_t num_shards = 4;
    std::size_t ring_capacity = 4096;
    /// Seeds shard_of(); identical seeds give identical shard ownership
    /// (and therefore identical handoff sequences).
    std::uint64_t seed = 0x9E3779B97F4A7C15ull;
    /// Lockstep single-thread execution; also forced by the
    /// GDP_DETERMINISTIC environment variable (any non-empty value).
    bool deterministic = false;
    /// Max PDUs a worker processes per ring before quiescing its QSBR
    /// slot and checking the stop flag.
    std::size_t batch = 128;
    /// Overload shedding at ingress: when a target ring already holds at
    /// least this many PDUs, kBenchData frames are discarded (with full
    /// `dp.drop.shed_bench` accounting) instead of enqueued, keeping ring
    /// space for control and durability traffic.  0 disables (default):
    /// every frame takes the legacy backpressure path.
    std::size_t shed_bench_watermark = 0;
    /// Flight-recorder settings (always-on by default, sampled).  A zero
    /// recorder seed inherits the plane seed, so one knob steers both.
    telemetry::FlightRecorder::Config recorder;
  };

  /// Egress hook: the forwarding decision for one PDU, called on the
  /// owning shard's worker thread.  Dropping the view releases the
  /// segment back to the pool.
  using EgressFn =
      std::function<void(std::size_t shard, const Name& next_hop, wire::PduView pdu)>;

  /// `fib` must outlive the data plane; its publisher side may be driven
  /// concurrently with forwarding (that is the point).
  ShardedDataPlane(Config cfg, FibPublisher& fib, EgressFn egress);
  ~ShardedDataPlane();

  ShardedDataPlane(const ShardedDataPlane&) = delete;
  ShardedDataPlane& operator=(const ShardedDataPlane&) = delete;

  /// Owning shard for a destination name (seeded, stable for the plane's
  /// lifetime).
  std::size_t shard_of(BytesView dst) const;

  /// Enqueues one PDU for forwarding; false when the target ingress ring
  /// is full (caller backpressure).  Mirrors SpscRing::try_push: on
  /// failure `pdu` is left untouched so the caller can retry the same
  /// frame.  Single-threaded producer: exactly one thread may call
  /// submit()/submit_to().
  bool submit(wire::PduView&& pdu);
  /// Bypasses the round-robin spreader (tests pin PDUs to a shard).
  bool submit_to(std::size_t shard, wire::PduView&& pdu);
  /// Re-injects a PDU from *inside the egress hook* for chained multi-hop
  /// forwarding: pushes onto the owning shard's self-handoff ring, where
  /// producer and consumer are the same worker thread, so this is legal
  /// from the egress callback while submit()'s single producer keeps
  /// running.  Same no-consume-on-failure contract as submit().
  bool resubmit(std::size_t shard, wire::PduView&& pdu);

  /// Threaded mode: spawn the workers / join them.  No-ops when
  /// deterministic.
  void start();
  void stop();

  /// Deterministic mode: drives all shards in lockstep until every ring
  /// is empty.  Also the drain step threaded tests call after stop().
  void run_until_idle();

  bool deterministic() const { return cfg_.deterministic; }
  std::size_t num_shards() const { return shards_.size(); }

  /// Advances the data-plane clock used for route-expiry checks (the
  /// engine itself never reads a wall clock — determinism).
  void set_now_ns(std::int64_t now_ns) {
    now_ns_.store(now_ns, std::memory_order_relaxed);
  }

  // Aggregates over all shards (exact once workers are stopped or idle).
  std::uint64_t forwarded() const;
  std::uint64_t forwarded_bytes() const;
  std::uint64_t handoffs() const;
  std::uint64_t dropped() const;

  /// Merged per-shard registries (shard order, then sorted names) plus
  /// `dp.shards`, the `dp.watermark.*` ring high-water gauges, the
  /// `dp.stall.*` backpressure counters and the recorder's count-only
  /// `dp.rec.*` slice: byte-identical output for identical traffic
  /// regardless of worker interleaving.  Deliberately excludes every
  /// wall-clock instrument (see wall_json()).
  std::string stats_json(int indent = 2) const;

  /// Merged wall-clock histograms (per-shard forwarding latency).
  /// Segregated from stats_json: values differ between reruns by nature.
  /// Exact once workers are stopped or idle.
  std::string wall_json(int indent = 2) const;

  // --- flight-recorder surface ---

  /// The recorder (never null; disabled recorders record nothing).
  const telemetry::FlightRecorder& recorder() const { return *rec_; }
  /// Track labels for exports: "shard0".."shardN-1", then "ingress".
  std::vector<std::string> recorder_track_names() const;
  /// Perfetto / chrome://tracing JSON of the recorded event rings, one
  /// track per shard worker plus the ingress producer.
  std::string perfetto_json() const;

  /// Per-shard wall-clock forwarding-latency histogram (sampled PDUs).
  /// Exact once the shard's worker is stopped or idle.
  const telemetry::Histogram& fwd_latency(std::size_t shard) const;

  /// Appends one sample of live queue pressure to `tl` at `t_ns`:
  /// per-shard ingress/handoff occupancy and high-water, per-shard
  /// forwarded counters, and the process buffer-pool gauges.  Safe to
  /// call from a poller thread while workers run (atomic reads only).
  void sample_pressure(std::int64_t t_ns, telemetry::StatsTimeline& tl) const;

 private:
  struct Shard {
    explicit Shard(std::size_t ring_capacity)
        : ingress(ring_capacity),
          fwd_pdus(metrics.counter("dp.fwd.pdus")),
          fwd_bytes(metrics.counter("dp.fwd.bytes")),
          handoff_out(metrics.counter("dp.handoff.out")),
          handoff_in(metrics.counter("dp.handoff.in")),
          dropped(metrics.counter("dp.drop.pdus")),
          drop_ttl(metrics.counter("dp.drop.ttl")),
          drop_no_route(metrics.counter("dp.drop.no_route")),
          drop_expired(metrics.counter("dp.drop.expired")),
          drop_handoff_shutdown(metrics.counter("dp.drop.handoff_shutdown")),
          drop_shutdown_drain(metrics.counter("dp.drop.shutdown_drain")),
          stall_handoff(metrics.counter("dp.stall.handoff_full")),
          stall_resubmit(metrics.counter("dp.stall.resubmit_full")),
          ring_occupancy(metrics.histogram("dp.ring.ingress_occupancy")),
          batch_moved(metrics.histogram("dp.batch.pdus")),
          fwd_latency(wall_metrics.histogram("dp.fwd.latency_ns")) {}

    net::SpscRing<wire::PduView> ingress;
    /// handoff[p]: ring carrying PDUs produced by shard p for this shard.
    std::vector<std::unique_ptr<net::SpscRing<wire::PduView>>> handoff;
    FibPublisher::Reader* reader = nullptr;
    std::thread thread;

    telemetry::MetricsRegistry metrics;
    telemetry::Counter& fwd_pdus;
    telemetry::Counter& fwd_bytes;
    telemetry::Counter& handoff_out;
    telemetry::Counter& handoff_in;
    telemetry::Counter& dropped;
    telemetry::Counter& drop_ttl;
    telemetry::Counter& drop_no_route;
    telemetry::Counter& drop_expired;
    telemetry::Counter& drop_handoff_shutdown;
    telemetry::Counter& drop_shutdown_drain;
    telemetry::Counter& stall_handoff;
    telemetry::Counter& stall_resubmit;
    /// Deterministic histograms (counts of counts — no clocks): ingress
    /// occupancy observed at drain start, PDUs moved per drain batch.
    telemetry::Histogram& ring_occupancy;
    telemetry::Histogram& batch_moved;
    /// Wall-clock registry, segregated from the deterministic dump.
    telemetry::MetricsRegistry wall_metrics;
    telemetry::Histogram& fwd_latency;
  };

  std::size_t ingress_track() const { return shards_.size(); }

  /// Forwards one PDU this shard owns: TTL, snapshot lookup, egress.
  /// `t0`: span-start timestamp when this PDU's event sequence was
  /// selected by the sampling gate (0 = untraced).  The caller captures
  /// it once at dequeue so a sampled sequence costs one clock read.
  void process(Shard& s, std::size_t shard_idx, wire::PduView pdu,
               std::int64_t t0);
  /// Pops one batch from every ring feeding shard i; returns PDUs moved.
  /// `inline_drain`: on a full handoff ring, drain the owner shard from
  /// this thread — only legal when no worker threads are running (lockstep
  /// mode and post-join drains); workers instead drop with accounting
  /// during the shutdown window.
  std::size_t drain_once(std::size_t shard_idx, bool inline_drain);
  void worker_loop(std::size_t shard_idx);
  /// Destructor-time discard of anything still queued (deterministic-mode
  /// teardown without a final run_until_idle): every PDU increments
  /// dp.drop.shutdown_drain and leaves a terminal drop span.
  void discard_queued();

  Config cfg_;
  FibPublisher& fib_;
  EgressFn egress_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<telemetry::FlightRecorder> rec_;
  /// Producer-side instruments (submit stalls, ingress sheds); single-
  /// writer like the per-shard registries: only the submit thread
  /// increments.
  telemetry::MetricsRegistry ingress_metrics_;
  telemetry::Counter& stall_submit_;
  telemetry::Counter& shed_bench_;
  std::atomic<bool> running_{false};
  std::atomic<std::int64_t> now_ns_{0};
  std::size_t rr_next_ = 0;  ///< round-robin ingress spreader state
};

}  // namespace gdp::router
