#include "router/glookup.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "trust/batch_warm.hpp"

namespace gdp::router {

GLookupService::GLookupService(net::Network& net, trust::Principal self,
                               Name domain,
                               std::shared_ptr<const Topology> topology)
    : net_(net),
      self_(std::move(self)),
      domain_(domain),
      topology_(std::move(topology)),
      metric_prefix_("glookup." + std::string(self_.label()) + "."),
      queries_served_(net_.metrics().counter(metric_prefix_ + "queries.served")),
      queries_escalated_(
          net_.metrics().counter(metric_prefix_ + "queries.escalated")),
      registrations_(net_.metrics().counter(metric_prefix_ + "registrations")),
      drop_malformed_(net_.metrics().counter(metric_prefix_ + "drop.malformed")),
      drop_stale_reply_(
          net_.metrics().counter(metric_prefix_ + "drop.stale_reply")),
      drop_unhandled_(net_.metrics().counter(metric_prefix_ + "drop.unhandled")),
      batch_accepted_(net_.metrics().counter(metric_prefix_ + "batch.accepted")),
      batch_rejected_(net_.metrics().counter(metric_prefix_ + "batch.rejected")),
      batch_bisections_(
          net_.metrics().counter(metric_prefix_ + "batch.bisections")),
      ranked_replies_(
          net_.metrics().counter(metric_prefix_ + "lb.ranked_replies")),
      ejected_skipped_(
          net_.metrics().counter(metric_prefix_ + "lb.ejected_skipped")),
      panic_replies_(
          net_.metrics().counter(metric_prefix_ + "lb.panic_replies")),
      load_reports_(net_.metrics().counter(metric_prefix_ + "lb.load_reports")),
      batch_size_(net_.metrics().histogram(metric_prefix_ + "batch.size")) {
  batch_seed_ = net_.sim().rng().next_u64();
  net_.attach(self_.name(), this);
}

void GLookupService::autosize_verify_cache() {
  if (verify_cache_pinned_) return;
  const std::size_t want = std::max<std::size_t>(
      trust::VerifyCache::kDefaultCapacity, 2 * entry_count());
  if (want > verify_cache_->capacity()) verify_cache_->set_capacity(want);
}

void GLookupService::publish_metrics() {
  auto& m = net_.metrics();
  m.counter(metric_prefix_ + "entries").set(entry_count());
  m.counter(metric_prefix_ + "verify_cache.hits").set(verify_cache_->hits());
  m.counter(metric_prefix_ + "verify_cache.misses").set(verify_cache_->misses());
  m.counter(metric_prefix_ + "verify_cache.size").set(verify_cache_->size());
  m.counter(metric_prefix_ + "verify_cache.capacity")
      .set(verify_cache_->capacity());
  if (selection_.enabled) {
    m.counter(metric_prefix_ + "health.ejections").set(health_.ejections());
    m.counter(metric_prefix_ + "health.readmissions")
        .set(health_.readmissions());
    m.counter(metric_prefix_ + "health.tracked").set(health_.tracked());
  }
}

Status GLookupService::verify_entry(const Entry& entry) const {
  const TimePoint now = net_.sim().now();
  GDP_ASSIGN_OR_RETURN(trust::Principal advertiser,
                       trust::Principal::deserialize(entry.principal));
  if (entry.evidence.empty()) {
    // Bare principal registration (e.g. a client): the principal itself is
    // the target and the self-signature is the proof.
    if (advertiser.name() != entry.target) {
      return make_error(Errc::kVerificationFailed,
                        "principal registration for a different name");
    }
    return ok_status();
  }
  GDP_ASSIGN_OR_RETURN(trust::Advertisement ad,
                       trust::Advertisement::deserialize(entry.evidence));
  if (ad.advertised != entry.target) {
    return make_error(Errc::kVerificationFailed,
                      "advertisement evidence names a different target");
  }
  // Pre-warm the (tree-shared) verify cache with one batched multi-scalar
  // multiplication; the sequential chain walk below then runs against
  // warm verdicts with its error semantics unchanged.
  {
    std::vector<trust::SignatureCheck> checks;
    trust::collect_advertisement_checks(ad, advertiser, checks);
    const trust::BatchWarmStats warm =
        trust::warm_verify_cache(*verify_cache_, checks, batch_seed_, now);
    if (warm.batched != 0) {
      batch_size_.record(static_cast<double>(warm.batched));
      batch_accepted_.inc(warm.accepted);
      batch_rejected_.inc(warm.rejected);
      batch_bisections_.inc(warm.bisections);
    }
  }
  // The full delegation chain must check out *here*, independently of
  // whatever the router already verified.
  GDP_RETURN_IF_ERROR(ad.verify(advertiser, now, &domain_, verify_cache_.get()));
  return ok_status();
}

Status GLookupService::register_entry(Entry entry) {
  GDP_RETURN_IF_ERROR(verify_entry(entry));
  if (auto advertiser = trust::Principal::deserialize(entry.principal);
      advertiser.ok()) {
    entry.advertiser = advertiser->name();
    if (selection_.enabled && !entry.evidence.empty()) {
      // Trust score from the delegation chain: a direct owner->server
      // AdCert is fully trusted; every interposed org membership link
      // discounts it, so at equal latency the shorter chain wins
      // (trust-aware routing).
      if (auto ad = trust::Advertisement::deserialize(entry.evidence);
          ad.ok()) {
        const double links =
            static_cast<double>(ad->delegation.member_certs.size());
        health_.set_trust(entry.advertiser, 1.0 / (1.0 + 0.25 * links));
      }
    }
  }
  auto& list = entries_[entry.target];
  auto existing = std::find_if(list.begin(), list.end(), [&](const Entry& e) {
    return e.attachment_router == entry.attachment_router;
  });
  if (existing != list.end()) {
    *existing = entry;  // refresh (expiry extension)
  } else {
    list.push_back(entry);
  }
  registrations_.inc();
  // A growing database means more distinct delegation chains to verify on
  // refresh; keep the verdict cache ahead of it (ROADMAP follow-on).
  autosize_verify_cache();
  // Propagate up where the placement policy allows ("any information
  // acquired during the advertisement process [is] also propagated to the
  // parent GLookupService" — unless the owner restricted the domains).
  if (parent_ != nullptr &&
      (entry.allowed_domains.empty() ||
       std::find(entry.allowed_domains.begin(), entry.allowed_domains.end(),
                 parent_->domain()) != entry.allowed_domains.end())) {
    Status up = parent_->register_entry(entry);
    if (!up.ok()) {
      GDP_LOG(kWarn, "glookup") << "upward propagation rejected: "
                                << up.error().to_string();
    }
  }
  return ok_status();
}

void GLookupService::unregister(const Name& target, const Name& attachment_router) {
  const std::int64_t now_ns = net_.sim().now().count();
  auto it = entries_.find(target);
  if (it != entries_.end()) {
    std::erase_if(it->second, [&](const Entry& e) {
      if (e.attachment_router != attachment_router) return false;
      // A withdrawal is a hard failure signal: the advertiser comes back
      // through probation, not straight into the rotation.
      if (selection_.enabled && !e.advertiser.is_zero()) {
        health_.eject(e.advertiser, now_ns);
      }
      return true;
    });
    if (it->second.empty()) entries_.erase(it);
  }
  if (parent_ != nullptr) parent_->unregister(target, attachment_router);
}

void GLookupService::unregister_attachment(const Name& attachment_router) {
  const std::int64_t now_ns = net_.sim().now().count();
  for (auto it = entries_.begin(); it != entries_.end();) {
    auto& list = it->second;
    std::erase_if(list, [&](const Entry& e) {
      if (e.attachment_router != attachment_router) return false;
      if (selection_.enabled && !e.advertiser.is_zero()) {
        health_.eject(e.advertiser, now_ns);
      }
      return true;
    });
    if (list.empty()) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  if (parent_ != nullptr) parent_->unregister_attachment(attachment_router);
}

void GLookupService::apply_load_report(const wire::LoadReportMsg& msg) {
  load_reports_.inc();
  if (selection_.enabled) {
    // Shedding bench filler (level 1) is pressure, not failure; shedding
    // real reads/writes (level >= 2) counts against the replica.
    health_.record_load(msg.server, net_.sim().now().count(),
                        msg.expected_delay_ns, msg.shed_level >= 2);
  }
  if (parent_ != nullptr) parent_->apply_load_report(msg);
}

std::vector<const GLookupService::Entry*> GLookupService::lookup_local(
    const Name& target) const {
  std::vector<const Entry*> out;
  auto it = entries_.find(target);
  if (it == entries_.end()) return out;
  const std::int64_t now = net_.sim().now().count();
  for (const Entry& e : it->second) {
    if (e.expires_ns >= now) out.push_back(&e);
  }
  return out;
}

wire::LookupReplyMsg GLookupService::build_reply(const wire::LookupMsg& query) {
  wire::LookupReplyMsg reply;
  reply.target = query.target;
  reply.nonce = query.nonce;
  reply.found = false;

  const Name querying_domain = topology_->domain_of(query.querying_router);
  struct Candidate {
    const Entry* entry;
    Name next_hop;
    std::uint32_t cost_us;
    double score;
  };
  std::vector<Candidate> eligible;
  for (const Entry* e : lookup_local(query.target)) {
    // Placement policy: a capsule restricted to specific domains must not
    // be resolved for routers outside them.
    if (!e->allowed_domains.empty() &&
        std::find(e->allowed_domains.begin(), e->allowed_domains.end(),
                  querying_domain) == e->allowed_domains.end()) {
      continue;
    }
    auto route = topology_->route(query.querying_router, e->attachment_router);
    if (!route) continue;
    eligible.push_back(
        Candidate{e, route->first, route->second,
                  static_cast<double>(route->second) * 1000.0});
  }
  if (eligible.empty()) return reply;

  if (!selection_.enabled) {
    // Legacy behavior: the single min-cost entry.
    const Candidate* best = &eligible.front();
    for (const Candidate& c : eligible) {
      if (c.cost_us < best->cost_us) best = &c;
    }
    reply.found = true;
    reply.attachment_router = best->entry->attachment_router;
    reply.next_hop = best->next_hop;
    reply.cost_us = best->cost_us;
    // The registration's lifetime bounds the FIB entry the querying router
    // installs: stale routes expire instead of living forever.
    reply.expires_ns = best->entry->expires_ns;
    reply.evidence = best->entry->evidence;
    reply.principal = best->entry->principal;
    return reply;
  }

  // Load-aware ranking: weighted score = (static path cost + observed
  // EWMA latency) x probation penalty / delegation-chain trust, skipping
  // ejected replicas.  If *every* replica is ejected, fail open with the
  // full set (panic routing) — degraded answers beat blackholes.
  const std::int64_t now_ns = net_.sim().now().count();
  std::vector<Candidate> ranked;
  for (const Candidate& c : eligible) {
    if (!c.entry->advertiser.is_zero() &&
        health_.ejected(c.entry->advertiser, now_ns)) {
      ejected_skipped_.inc();
      continue;
    }
    ranked.push_back(c);
  }
  if (ranked.empty()) {
    panic_replies_.inc();
    ranked = eligible;
  }
  for (Candidate& c : ranked) {
    const std::uint64_t base_ns = std::max<std::uint64_t>(
        static_cast<std::uint64_t>(c.cost_us) * 1000,
        selection_.default_latency_ns);
    c.score = c.entry->advertiser.is_zero()
                  ? static_cast<double>(base_ns)
                  : health_.score(c.entry->advertiser, now_ns, base_ns);
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const Candidate& a, const Candidate& b) {
                     if (a.score != b.score) return a.score < b.score;
                     return a.entry->attachment_router <
                            b.entry->attachment_router;
                   });
  // With replicas to choose among, cap the FIB lease so routers
  // re-resolve at the selection cadence and traffic can drain away from
  // replicas that degrade after this answer.
  const bool lease = eligible.size() > 1;
  auto lease_bound = [&](std::int64_t expires_ns) {
    if (!lease) return expires_ns;
    return std::min(expires_ns, now_ns + selection_.route_lease.count());
  };
  const Candidate& best = ranked.front();
  reply.found = true;
  reply.attachment_router = best.entry->attachment_router;
  reply.next_hop = best.next_hop;
  reply.cost_us = best.cost_us;
  reply.expires_ns = lease_bound(best.entry->expires_ns);
  reply.evidence = best.entry->evidence;
  reply.principal = best.entry->principal;
  for (std::size_t i = 1;
       i < ranked.size() && reply.alternates.size() + 1 < selection_.max_replicas;
       ++i) {
    wire::LookupReplyMsg::ReplicaOption opt;
    opt.attachment_router = ranked[i].entry->attachment_router;
    opt.next_hop = ranked[i].next_hop;
    opt.cost_us = ranked[i].cost_us;
    opt.expires_ns = lease_bound(ranked[i].entry->expires_ns);
    opt.evidence = ranked[i].entry->evidence;
    opt.principal = ranked[i].entry->principal;
    reply.alternates.push_back(std::move(opt));
  }
  ranked_replies_.inc();
  return reply;
}

void GLookupService::send_reply(const Name& to, const wire::LookupReplyMsg& reply,
                                std::uint64_t flow_id) {
  wire::Pdu pdu;
  pdu.dst = to;
  pdu.src = self_.name();
  pdu.type = wire::MsgType::kLookupReply;
  pdu.flow_id = flow_id;
  pdu.payload = reply.serialize();
  net_.send(self_.name(), to, std::move(pdu));
}

void GLookupService::answer(const Name& reply_to, const wire::LookupMsg& query) {
  wire::LookupReplyMsg reply = build_reply(query);
  if (reply.found || parent_ == nullptr) {
    queries_served_.inc();
    send_reply(reply_to, reply, query.nonce);
    return;
  }
  // Escalate to the parent domain's service.
  queries_escalated_.inc();
  const std::uint64_t nonce = next_nonce_++;
  pending_[nonce] = PendingQuery{reply_to, query};
  wire::LookupMsg up = query;
  up.nonce = nonce;
  wire::Pdu pdu;
  pdu.dst = parent_->name();
  pdu.src = self_.name();
  pdu.type = wire::MsgType::kLookup;
  pdu.flow_id = nonce;
  pdu.payload = up.serialize();
  net_.send(self_.name(), parent_->name(), std::move(pdu));
}

void GLookupService::on_pdu(const Name& from, const wire::Pdu& pdu) {
  net_.trace().record(pdu.trace_id, self_.name(), "recv");
  switch (pdu.type) {
    case wire::MsgType::kLookup: {
      auto msg = wire::LookupMsg::deserialize(pdu.payload);
      if (!msg.ok()) {
        drop_malformed_.inc();
        net_.trace().record(pdu.trace_id, self_.name(), "drop", "malformed");
        return;
      }
      net_.trace().record(pdu.trace_id, self_.name(), "deliver", "lookup");
      answer(from, *msg);
      return;
    }
    case wire::MsgType::kLookupReply: {
      auto reply = wire::LookupReplyMsg::deserialize(pdu.payload);
      if (!reply.ok()) {
        drop_malformed_.inc();
        net_.trace().record(pdu.trace_id, self_.name(), "drop", "malformed");
        return;
      }
      auto it = pending_.find(reply->nonce);
      if (it == pending_.end()) {  // stale or replayed
        drop_stale_reply_.inc();
        net_.trace().record(pdu.trace_id, self_.name(), "drop", "stale_reply");
        return;
      }
      PendingQuery pq = std::move(it->second);
      pending_.erase(it);
      // Cache verified evidence so future queries resolve locally.
      if (reply->found && !reply->evidence.empty()) {
        Entry entry;
        entry.target = reply->target;
        entry.attachment_router = reply->attachment_router;
        entry.evidence = reply->evidence;
        entry.principal = reply->principal;
        auto ad = trust::Advertisement::deserialize(reply->evidence);
        if (ad.ok()) {
          entry.expires_ns = ad->expires_ns;
          entry.allowed_domains = ad->delegation.ad_cert.allowed_domains;
          if (!verify_entry(entry).ok()) {
            GDP_LOG(kWarn, "glookup") << "refusing to cache unverifiable reply";
          } else {
            auto& list = entries_[entry.target];
            if (std::none_of(list.begin(), list.end(), [&](const Entry& e) {
                  return e.attachment_router == entry.attachment_router;
                })) {
              list.push_back(entry);
            }
          }
        }
      }
      wire::LookupReplyMsg out = *reply;
      out.nonce = pq.msg.nonce;
      send_reply(pq.requester, out, pq.msg.nonce);
      return;
    }
    case wire::MsgType::kLoadReport: {
      auto msg = wire::LoadReportMsg::deserialize(pdu.payload);
      if (!msg.ok()) {
        drop_malformed_.inc();
        net_.trace().record(pdu.trace_id, self_.name(), "drop", "malformed");
        return;
      }
      apply_load_report(*msg);
      return;
    }
    default:
      GDP_LOG(kWarn, "glookup") << "unexpected PDU type "
                                << static_cast<int>(pdu.type);
      drop_unhandled_.inc();
      net_.trace().record(pdu.trace_id, self_.name(), "drop", "unhandled_type");
  }
}

std::size_t GLookupService::entry_count() const {
  std::size_t n = 0;
  for (const auto& [_, list] : entries_) n += list.size();
  return n;
}

}  // namespace gdp::router
