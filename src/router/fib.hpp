// Read-mostly FIB as immutable snapshots, swapped RCU-style.
//
// Forwarding is the hot path; route updates (advertisements, lookup
// replies, expiry sweeps, link failures) are rare.  The authoritative
// table therefore lives with the control plane in a FibPublisher, and
// every mutation batch publishes a fresh *immutable* FibSnapshot — a flat
// open-addressing hash table — through one atomic pointer.  Forwarding
// (the simulator router and every shard worker of the threaded data
// plane) reads the current snapshot with a single acquire load and never
// takes a lock.
//
// Reclamation is quiescent-state-based (QSBR): each reader thread
// registers a Reader slot and announces, between forwarding batches while
// holding no snapshot pointer, the latest publish epoch it has observed.
// A retired snapshot is freed once every active reader has announced an
// epoch at or past its retirement — at that point no reader can still
// hold it, because the announcement happens-after the pointer swap.
//
// Single-threaded use (the deterministic simulator) degenerates cleanly:
// no readers are registered, so retired snapshots free on the next
// publish, and the transient pointer held inside one forward() call can
// never outlive it.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/name.hpp"
#include "telemetry/metrics.hpp"

namespace gdp::router {

/// Immutable flat hash table: target name -> (next hop, expiry).  Built
/// by FibPublisher::publish(); never mutated afterwards, so concurrent
/// readers need no synchronization beyond the acquire load that found it.
class FibSnapshot {
 public:
  struct Entry {
    Name target;
    Name next_hop;
    std::int64_t expires_ns = 0;  ///< <= 0: unbounded
  };

  /// Lock-free point lookup; nullptr on miss.  `target` must be a
  /// 32-byte name view (zero-copy key straight out of a wire segment).
  const Entry* find(BytesView target) const;
  const Entry* find(const Name& target) const { return find(target.view()); }

  std::size_t size() const { return entries_.size(); }
  std::uint64_t version() const { return version_; }
  const std::vector<Entry>& entries() const { return entries_; }

 private:
  friend class FibPublisher;

  std::vector<Entry> entries_;
  /// Open-addressing slot table: entry index + 1, 0 = empty.  Power-of-two
  /// sized at >= 2x entries, linear probing.
  std::vector<std::uint32_t> slots_;
  std::size_t mask_ = 0;
  std::uint64_t version_ = 0;
};

/// Authoritative route table + snapshot publication + QSBR reclamation.
/// One writer thread (the control plane); any number of reader threads.
class FibPublisher {
 public:
  struct Route {
    Name next_hop;
    std::int64_t expires_ns = 0;
  };

  /// One per reader thread.  quiesce() must only be called while the
  /// thread holds no snapshot pointer.
  class Reader {
   public:
    void quiesce() {
      epoch_.store(publisher_->publish_epoch_.load(std::memory_order_acquire),
                   std::memory_order_release);
    }
    /// Permanently stops participating (thread exiting); retired
    /// snapshots no longer wait on this reader.
    void retire() {
      epoch_.store(~std::uint64_t{0}, std::memory_order_release);
    }

   private:
    friend class FibPublisher;
    explicit Reader(FibPublisher* p) : publisher_(p) {}
    FibPublisher* publisher_;
    std::atomic<std::uint64_t> epoch_{0};
  };

  FibPublisher();
  ~FibPublisher();

  FibPublisher(const FibPublisher&) = delete;
  FibPublisher& operator=(const FibPublisher&) = delete;

  // --- writer side (control plane) ---

  void upsert(const Name& target, const Name& next_hop, std::int64_t expires_ns);
  bool erase(const Name& target);
  /// Erases every route matching `pred(target, route)`; returns the count.
  template <typename Pred>
  std::size_t erase_if(Pred pred) {
    std::size_t n = 0;
    for (auto it = map_.begin(); it != map_.end();) {
      if (pred(it->first, it->second)) {
        it = map_.erase(it);
        ++n;
      } else {
        ++it;
      }
    }
    if (n != 0) dirty_ = true;
    return n;
  }

  /// Swaps in a snapshot of the current table if anything changed since
  /// the last publish, then reclaims every retired snapshot all active
  /// readers have quiesced past.  No-op when clean.
  void publish();

  // --- reader side (forwarding) ---

  /// Current snapshot.  Hold only transiently; a registered reader must
  /// quiesce() between holds or retired snapshots cannot be reclaimed.
  const FibSnapshot* snapshot() const {
    return current_.load(std::memory_order_acquire);
  }

  /// Registers a reader slot (call before the reader thread starts; slots
  /// live as long as the publisher).
  Reader* register_reader();

  // --- introspection (writer thread) ---

  const std::unordered_map<Name, Route>& routes() const { return map_; }
  const Route* route(const Name& target) const {
    auto it = map_.find(target);
    return it == map_.end() ? nullptr : &it->second;
  }
  std::size_t size() const { return map_.size(); }
  std::uint64_t publish_count() const { return publish_count_; }
  std::size_t retired_count() const { return retired_.size(); }
  /// Retired snapshots actually freed so far (QSBR progress gauge: if
  /// this stalls while retired_count() grows, some reader stopped
  /// quiescing).
  std::uint64_t reclaimed_count() const { return reclaimed_count_; }

  /// Publishes the control-plane route-maintenance gauges into `m`:
  ///   <prefix>fib.size / fib.publishes / fib.retired_pending /
  ///   fib.reclaimed / fib.readers.  Writer thread only (the counters it
  ///   reads are writer-owned) — deterministic for identical update
  ///   sequences.
  void publish_stats(telemetry::MetricsRegistry& m,
                     const std::string& prefix) const;

 private:
  void reclaim();
  static std::unique_ptr<const FibSnapshot> build(
      const std::unordered_map<Name, Route>& map, std::uint64_t version);

  std::unordered_map<Name, Route> map_;
  bool dirty_ = false;

  std::atomic<const FibSnapshot*> current_{nullptr};
  std::unique_ptr<const FibSnapshot> owned_current_;
  /// publish() bumps this *after* swapping the pointer; readers copy it
  /// into their slot at quiescent points.
  std::atomic<std::uint64_t> publish_epoch_{0};
  std::uint64_t publish_count_ = 0;
  std::uint64_t reclaimed_count_ = 0;

  struct Retired {
    std::uint64_t epoch;
    std::unique_ptr<const FibSnapshot> snapshot;
  };
  std::vector<Retired> retired_;
  std::vector<std::unique_ptr<Reader>> readers_;
};

}  // namespace gdp::router
