#include "router/router.hpp"

#include <algorithm>
#include <cstring>

#include "common/log.hpp"
#include "loadmgmt/selector.hpp"
#include "trust/batch_warm.hpp"

namespace gdp::router {

Router::Router(net::Network& net, const crypto::PrivateKey& key, std::string label,
               Name domain, std::shared_ptr<const Topology> topology)
    : net_(net),
      self_(trust::Principal::create(key, trust::Role::kRouter, std::move(label))),
      domain_(domain),
      topology_(std::move(topology)),
      metric_prefix_("router." + std::string(self_.label()) + "."),
      forwarded_(net_.metrics().counter(metric_prefix_ + "fwd.pdus")),
      dropped_(net_.metrics().counter(metric_prefix_ + "drop.pdus")),
      lookups_issued_(net_.metrics().counter(metric_prefix_ + "lookups.issued")),
      lookup_retries_(net_.metrics().counter(metric_prefix_ + "lookup.retries")),
      lookup_timeouts_(
          net_.metrics().counter(metric_prefix_ + "lookup.timeouts")),
      ads_accepted_(net_.metrics().counter(metric_prefix_ + "ads.accepted")),
      ads_rejected_(net_.metrics().counter(metric_prefix_ + "ads.rejected")),
      fib_hits_(net_.metrics().counter(metric_prefix_ + "fib.hits")),
      fib_misses_(net_.metrics().counter(metric_prefix_ + "fib.misses")),
      fib_expired_(net_.metrics().counter(metric_prefix_ + "fib.expired")),
      neighbor_down_events_(
          net_.metrics().counter(metric_prefix_ + "neighbor.down_events")),
      neighbor_up_events_(
          net_.metrics().counter(metric_prefix_ + "neighbor.up_events")),
      bad_catalog_records_(
          net_.metrics().counter(metric_prefix_ + "drop.bad_catalog_record")),
      drop_ttl_(net_.metrics().counter(metric_prefix_ + "drop.ttl")),
      drop_no_route_(net_.metrics().counter(metric_prefix_ + "drop.no_route")),
      drop_no_glookup_(net_.metrics().counter(metric_prefix_ + "drop.no_glookup")),
      drop_bad_evidence_(
          net_.metrics().counter(metric_prefix_ + "drop.bad_evidence")),
      drop_stale_route_(
          net_.metrics().counter(metric_prefix_ + "drop.stale_route")),
      drop_next_hop_down_(
          net_.metrics().counter(metric_prefix_ + "drop.next_hop_unreachable")),
      drop_malformed_(net_.metrics().counter(metric_prefix_ + "drop.malformed")),
      drop_unhandled_(net_.metrics().counter(metric_prefix_ + "drop.unhandled")),
      drop_queue_full_(
          net_.metrics().counter(metric_prefix_ + "drop.queue_full")),
      drop_lookup_timeout_(
          net_.metrics().counter(metric_prefix_ + "drop.lookup_timeout")),
      drop_unsolicited_reply_(net_.metrics().counter(
          metric_prefix_ + "drop.unsolicited_lookup_reply")),
      drop_retry_budget_(net_.metrics().counter(
          metric_prefix_ + "drop.retry_budget_exhausted")),
      p2c_picks_(net_.metrics().counter(metric_prefix_ + "lb.p2c_picks")),
      p2c_alternate_chosen_(
          net_.metrics().counter(metric_prefix_ + "lb.alternate_chosen")),
      load_reports_relayed_(
          net_.metrics().counter(metric_prefix_ + "lb.load_reports_relayed")),
      batch_accepted_(net_.metrics().counter(metric_prefix_ + "batch.accepted")),
      batch_rejected_(net_.metrics().counter(metric_prefix_ + "batch.rejected")),
      batch_bisections_(
          net_.metrics().counter(metric_prefix_ + "batch.bisections")),
      batch_size_(net_.metrics().histogram(metric_prefix_ + "batch.size")) {
  batch_seed_ = net_.sim().rng().next_u64();
  lookup_retry_budget_ = loadmgmt::RetryBudget(maintenance_.retry_budget);
  net_.attach(self_.name(), this);
}

void Router::drop_pdu(const wire::Pdu& pdu, telemetry::Counter& reason_counter,
                      const char* reason) {
  drop_pdu(pdu.trace_id, reason_counter, reason);
}

void Router::drop_pdu(std::uint64_t trace_id, telemetry::Counter& reason_counter,
                      const char* reason) {
  dropped_.inc();
  reason_counter.inc();
  net_.trace().record(trace_id, self_.name(), "drop", reason);
}

void Router::autosize_verify_cache() {
  if (verify_cache_pinned_) return;
  const std::size_t want =
      std::max<std::size_t>(trust::VerifyCache::kDefaultCapacity, 2 * fib_.size());
  if (want > verify_cache_.capacity()) verify_cache_.set_capacity(want);
}

void Router::publish_metrics() {
  auto& m = net_.metrics();
  m.counter(metric_prefix_ + "fib.size").set(fib_.size());
  m.counter(metric_prefix_ + "awaiting_route.pdus").set(awaiting_route_count());
  m.counter(metric_prefix_ + "lookups.pending").set(pending_lookup_count());
  m.counter(metric_prefix_ + "verify_cache.hits").set(verify_cache_.hits());
  m.counter(metric_prefix_ + "verify_cache.misses").set(verify_cache_.misses());
  m.counter(metric_prefix_ + "verify_cache.size").set(verify_cache_.size());
  m.counter(metric_prefix_ + "verify_cache.capacity")
      .set(verify_cache_.capacity());
  if (maintenance_.use_retry_budget) {
    m.counter(metric_prefix_ + "retry_budget.granted")
        .set(lookup_retry_budget_.granted());
    m.counter(metric_prefix_ + "retry_budget.denied")
        .set(lookup_retry_budget_.denied());
  }
  // Snapshot-publication / QSBR gauges (fib.publishes, fib.reclaimed, ...):
  // publish_metrics runs on the control-plane thread, which owns them.
  fib_.publish_stats(m, metric_prefix_);
}

std::string Router::stats_json(int indent) {
  publish_metrics();
  return net_.metrics().subset(metric_prefix_).to_json(indent);
}

void Router::on_pdu(const Name& from, const wire::Pdu& pdu) {
  net_.trace().record(pdu.trace_id, self_.name(), "recv");
  if (pdu.dst == self_.name()) {
    handle_control(from, pdu);
    return;
  }
  forward(pdu);
}

void Router::on_pdu_view(const Name& from, wire::PduView view) {
  net_.trace().record(view.trace_id(), self_.name(), "recv");
  if (std::memcmp(view.dst_bytes().data(), self_.name().raw().data(),
                  Name::kSize) == 0) {
    // Control plane: rare, verification-heavy, parsed by the legacy
    // handlers — the materialise copy is off the forwarding path.
    const wire::Pdu pdu = view.materialize();
    handle_control(from, pdu);
    return;
  }
  forward_view(std::move(view));
}

void Router::handle_control(const Name& from, const wire::Pdu& pdu) {
  switch (pdu.type) {
    case wire::MsgType::kAdvertise:
      handle_advertise(from, pdu);
      return;
    case wire::MsgType::kChallengeReply:
      handle_challenge_reply(from, pdu);
      return;
    case wire::MsgType::kLookupReply:
      handle_lookup_reply(pdu);
      return;
    case wire::MsgType::kLoadReport: {
      // Server pressure report: relay to the domain's lookup service so
      // replica ranking sees it.  Only neighbors (attached endpoints) may
      // report — a remote principal must not be able to poison another
      // server's health record.
      if (glookup_ == nullptr || !net_.adjacent(self_.name(), pdu.src)) {
        drop_pdu(pdu, drop_unhandled_, "load_report_unroutable");
        return;
      }
      load_reports_relayed_.inc();
      wire::Pdu relay = pdu;
      relay.dst = glookup_->name();
      net_.send(self_.name(), glookup_->name(), std::move(relay));
      return;
    }
    default:
      // Benchmarks may address raw traffic to the router itself.
      if (pdu.type == wire::MsgType::kBenchData) {
        net_.trace().record(pdu.trace_id, self_.name(), "deliver", "bench_sink");
        return;
      }
      GDP_LOG(kWarn, "router") << "unhandled control PDU type "
                               << static_cast<int>(pdu.type);
      drop_pdu(pdu, drop_unhandled_, "unhandled_type");
      return;
  }
}

void Router::forward(wire::Pdu pdu) {
  if (pdu.ttl == 0) {
    drop_pdu(pdu, drop_ttl_, "ttl");
    return;
  }
  pdu.ttl -= 1;
  forward_slow(std::move(pdu));
}

void Router::forward_view(wire::PduView pdu) {
  if (pdu.ttl() == 0) {
    drop_pdu(pdu.trace_id(), drop_ttl_, "ttl");
    return;
  }
  pdu.dec_ttl();
  // Lock-free lookup against the published immutable snapshot: one
  // acquire load, open-addressing probe over flat memory, no mutation.
  const FibSnapshot::Entry* e = fib_.snapshot()->find(pdu.dst_bytes());
  if (e != nullptr && !route_expired(e->expires_ns)) {
    fib_hits_.inc();
    net_.trace().record(pdu.trace_id(), self_.name(), "fib_lookup", "hit");
    forwarded_.inc();
    net_.trace().record(pdu.trace_id(), self_.name(), "forward");
    net_.send_view(self_.name(), e->next_hop, std::move(pdu));
    return;
  }
  // Miss or expired hit: the slow path owns every mutating branch (lazy
  // purge, queue-on-miss, lookup kick-off).  TTL is already decremented.
  forward_slow(pdu.materialize());
}

void Router::forward_slow(wire::Pdu pdu) {
  const FibPublisher::Route* route = fib_.route(pdu.dst);
  if (route != nullptr && route_expired(route->expires_ns)) {
    // Lazy purge: fall through to the miss path, which re-triggers a
    // lookup instead of silently forwarding on stale state.
    fib_expired_.inc();
    net_.trace().record(pdu.trace_id, self_.name(), "fib_expired");
    fib_.erase(pdu.dst);
    fib_.publish();
    route = nullptr;
  }
  if (route != nullptr) {
    fib_hits_.inc();
    net_.trace().record(pdu.trace_id, self_.name(), "fib_lookup", "hit");
    forwarded_.inc();
    net_.trace().record(pdu.trace_id, self_.name(), "forward");
    net_.send(self_.name(), route->next_hop, std::move(pdu));
    return;
  }
  fib_misses_.inc();
  net_.trace().record(pdu.trace_id, self_.name(), "fib_lookup", "miss");
  if (glookup_ == nullptr) {
    drop_pdu(pdu, drop_no_glookup_, "no_glookup");
    return;
  }
  const Name target = pdu.dst;
  auto& queue = awaiting_route_[target];
  if (queue.size() >= maintenance_.max_queued_per_target) {
    drop_pdu(pdu, drop_queue_full_, "queue_full");
    return;
  }
  queue.push_back(std::move(pdu));
  start_lookup(target);
}

void Router::start_lookup(const Name& target) {
  // One lookup in flight per target: later PDUs park behind it, and a
  // target whose lookup failed terminally gets a fresh attempt (its
  // pending entry was erased, so re-resolution is never wedged).
  if (pending_lookups_.contains(target)) return;
  pending_lookups_.emplace(target, PendingLookup{});
  issue_lookup(target);
}

void Router::issue_lookup(const Name& target) {
  auto it = pending_lookups_.find(target);
  if (it == pending_lookups_.end()) return;
  it->second.attempts += 1;
  it->second.nonce = net_.sim().rng().next_u64();
  lookups_issued_.inc();
  // Fresh lookups (not retries) earn retry-budget tokens.
  if (it->second.attempts == 1) lookup_retry_budget_.on_request();
  wire::LookupMsg msg;
  msg.target = target;
  msg.querying_router = self_.name();
  msg.nonce = it->second.nonce;
  wire::Pdu pdu;
  pdu.dst = glookup_->name();
  pdu.src = self_.name();
  pdu.type = wire::MsgType::kLookup;
  pdu.flow_id = msg.nonce;
  pdu.payload = msg.serialize();
  // Exponential backoff: timeout doubles with every attempt, covering
  // parent-hierarchy escalation latencies on retries.
  const Duration timeout =
      maintenance_.lookup_timeout * (std::int64_t{1} << (it->second.attempts - 1));
  it->second.timer = net_.sim().schedule_cancellable(
      timeout, [this, target] { on_lookup_timeout(target); });
  net_.send(self_.name(), glookup_->name(), std::move(pdu));
}

void Router::on_lookup_timeout(const Name& target) {
  auto it = pending_lookups_.find(target);
  if (it == pending_lookups_.end()) return;
  if (it->second.attempts >= maintenance_.max_lookup_attempts) {
    lookup_timeouts_.inc();
    pending_lookups_.erase(it);
    GDP_LOG(kWarn, "router") << "lookup for " << target.short_hex()
                             << " timed out after retries; dropping queue";
    drop_waiting_queue(target, drop_lookup_timeout_, "lookup_timeout");
    return;
  }
  // The retry budget gates every retry: when a fleet-wide overload has
  // every lookup timing out, the budget caps retry amplification at its
  // fill ratio instead of letting 2^n backoff traffic pile onto an
  // already-saturated lookup service.
  if (maintenance_.use_retry_budget && !lookup_retry_budget_.try_retry()) {
    lookup_timeouts_.inc();
    pending_lookups_.erase(it);
    drop_waiting_queue(target, drop_retry_budget_, "retry_budget_exhausted");
    return;
  }
  lookup_retries_.inc();
  // Account the retry on the waiting PDUs' timelines (the lookup PDU
  // itself gets a fresh trace id on transmission).
  auto waiting = awaiting_route_.find(target);
  if (waiting != awaiting_route_.end() && !waiting->second.empty()) {
    net_.trace().record(waiting->second.front().trace_id, self_.name(),
                        "lookup_retry",
                        "attempt" + std::to_string(it->second.attempts + 1));
  }
  issue_lookup(target);
}

void Router::drop_waiting_queue(const Name& target,
                                telemetry::Counter& reason_counter,
                                const char* reason) {
  auto waiting = awaiting_route_.find(target);
  if (waiting == awaiting_route_.end()) return;
  // Dropping a queued PDU accounts the *queued* PDU's trace id, so its
  // timeline ends with the drop reason rather than going silent.
  for (const wire::Pdu& p : waiting->second) drop_pdu(p, reason_counter, reason);
  awaiting_route_.erase(waiting);
}

void Router::handle_lookup_reply(const wire::Pdu& pdu) {
  auto reply = wire::LookupReplyMsg::deserialize(pdu.payload);
  if (!reply.ok()) {
    drop_pdu(pdu, drop_malformed_, "malformed_lookup_reply");
    return;
  }
  // Replies must match an outstanding request's nonce: unsolicited replies
  // and stragglers from superseded attempts are discarded before any state
  // changes (a spoofed reply must not install routes or drain queues).
  auto pending = pending_lookups_.find(reply->target);
  if (pending == pending_lookups_.end() || pending->second.nonce != reply->nonce) {
    drop_pdu(pdu, drop_unsolicited_reply_, "unsolicited_lookup_reply");
    return;
  }
  pending->second.timer.cancel();
  pending_lookups_.erase(pending);

  auto drop_waiting = [&](telemetry::Counter& reason_counter, const char* reason) {
    drop_waiting_queue(reply->target, reason_counter, reason);
  };
  if (!reply->found) {
    drop_waiting(drop_no_route_, "no_route");
    return;
  }
  // Load-aware replies carry ranked alternates (best first).  Pick
  // power-of-two-choices among the viable candidates — adjacent next hop,
  // not ejected in this router's own neighbor-health view — so a fleet of
  // routers renewing the same short route lease spreads across the top
  // replicas instead of herding onto rank 0.  A plain reply (no
  // alternates) takes the legacy single-candidate path below unchanged.
  struct Option {
    Name attachment_router;
    Name next_hop;
    std::int64_t expires_ns = 0;
    const Bytes* evidence = nullptr;
    const Bytes* principal = nullptr;
  };
  std::vector<Option> options;
  options.push_back(Option{reply->attachment_router, reply->next_hop,
                           reply->expires_ns, &reply->evidence,
                           &reply->principal});
  for (const auto& alt : reply->alternates) {
    options.push_back(Option{alt.attachment_router, alt.next_hop,
                             alt.expires_ns, &alt.evidence, &alt.principal});
  }
  std::size_t chosen = 0;
  if (options.size() > 1) {
    const std::int64_t now_ns = net_.sim().now().count();
    auto effective_hop = [&](const Option& o) {
      return o.attachment_router == self_.name() ? reply->target : o.next_hop;
    };
    auto collect = [&](bool health_filter) {
      std::vector<std::size_t> out;
      for (std::size_t i = 0; i < options.size(); ++i) {
        const Name hop = effective_hop(options[i]);
        if (hop == self_.name() || !net_.adjacent(self_.name(), hop)) continue;
        if (health_filter && neighbor_health_.ejected(hop, now_ns)) continue;
        out.push_back(i);
      }
      return out;
    };
    std::vector<std::size_t> viable = collect(/*health_filter=*/true);
    // Every viable hop ejected: fail open over all adjacent candidates
    // rather than blackholing (the legacy path would do no better).
    if (viable.empty()) viable = collect(/*health_filter=*/false);
    if (!viable.empty()) {
      // Score by the registry's rank order; equal ranks cannot happen, so
      // P2C yields a deterministic 2/3 : 1/3 spread over the top choices.
      std::vector<double> scores(viable.size());
      for (std::size_t j = 0; j < viable.size(); ++j) {
        scores[j] = static_cast<double>(viable[j]);
      }
      chosen = viable[loadmgmt::pick_power_of_two(scores, net_.sim().rng())];
      p2c_picks_.inc();
      if (chosen != 0) p2c_alternate_chosen_.inc();
    }
  }
  const Option& picked = options[chosen];
  // Independently verify the routing state before installing it — a
  // compromised lookup service must not be able to plant black holes for
  // delegated names.
  std::int64_t expires_ns = picked.expires_ns;
  if (!picked.evidence->empty()) {
    auto ad = trust::Advertisement::deserialize(*picked.evidence);
    auto advertiser = trust::Principal::deserialize(*picked.principal);
    if (!ad.ok() || !advertiser.ok() ||
        ad->advertised != reply->target ||
        !ad->verify(*advertiser, net_.sim().now(), nullptr, &verify_cache_).ok()) {
      GDP_LOG(kWarn, "router") << "rejecting unverifiable lookup reply for "
                               << reply->target.short_hex();
      net_.trace().record(pdu.trace_id, self_.name(), "verify", "evidence_bad");
      drop_waiting(drop_bad_evidence_, "bad_evidence");
      return;
    }
    if (ad->expires_ns > 0 && (expires_ns <= 0 || ad->expires_ns < expires_ns)) {
      expires_ns = ad->expires_ns;
    }
    net_.trace().record(pdu.trace_id, self_.name(), "verify", "evidence_ok");
  } else {
    // No delegation evidence: only self-certifying principal targets (the
    // principal's key hashes to the target name) may be installed.  For
    // any other name — notably remotely attached capsules — evidence is
    // mandatory, or the reply could plant an unverifiable black hole.
    auto principal = trust::Principal::deserialize(*picked.principal);
    if (!principal.ok() || principal->name() != reply->target) {
      net_.trace().record(pdu.trace_id, self_.name(), "verify",
                          "evidence_missing");
      drop_waiting(drop_bad_evidence_, "bad_evidence");
      return;
    }
  }
  const Name next_hop = picked.attachment_router == self_.name()
                            ? reply->target
                            : picked.next_hop;
  if (next_hop != self_.name() && net_.adjacent(self_.name(), next_hop)) {
    fib_.upsert(reply->target, next_hop, expires_ns);
    fib_.publish();
    autosize_verify_cache();
  } else if (picked.attachment_router == self_.name()) {
    // The target was supposedly attached here but is not adjacent: stale.
    drop_waiting(drop_stale_route_, "stale_route");
    return;
  } else {
    // The resolved next hop is not (or no longer) reachable from here:
    // terminal for the parked PDUs, which must not stay queued behind a
    // lookup that no longer exists.
    net_.trace().record(pdu.trace_id, self_.name(), "verify",
                        "next_hop_unreachable");
    drop_waiting(drop_next_hop_down_, "next_hop_unreachable");
    return;
  }
  auto waiting = awaiting_route_.find(reply->target);
  if (waiting != awaiting_route_.end()) {
    std::vector<wire::Pdu> queued = std::move(waiting->second);
    awaiting_route_.erase(waiting);
    for (wire::Pdu& p : queued) {
      forwarded_.inc();
      net_.trace().record(p.trace_id, self_.name(), "forward", "post_lookup");
      net_.send(self_.name(), next_hop, std::move(p));
    }
  }
}

void Router::handle_advertise(const Name& from, const wire::Pdu& pdu) {
  auto msg = wire::AdvertiseMsg::deserialize(pdu.payload);
  if (!msg.ok()) {
    drop_pdu(pdu, drop_malformed_, "malformed_advertisement");
    send_advertise_ok(from, false, "malformed advertisement", 0);
    return;
  }
  auto advertiser = trust::Principal::deserialize(msg->principal);
  if (!advertiser.ok()) {
    drop_pdu(pdu, drop_malformed_, "invalid_principal");
    send_advertise_ok(from, false, "invalid principal", 0);
    return;
  }
  PendingAd pending{from, *advertiser, std::move(msg->catalog_records),
                    net_.sim().rng().next_bytes(32)};
  wire::ChallengeMsg challenge;
  challenge.nonce = pending.nonce;
  // The router mints the handshake id: endpoint flow ids are only unique
  // per endpoint, and the challenge reply echoes our flow id anyway.
  const std::uint64_t challenge_id = net_.sim().rng().next_u64();
  pending_ads_.insert_or_assign(challenge_id, std::move(pending));

  wire::Pdu out;
  out.dst = from;
  out.src = self_.name();
  out.type = wire::MsgType::kChallenge;
  out.flow_id = challenge_id;
  out.payload = challenge.serialize();
  net_.send(self_.name(), from, std::move(out));
}

void Router::handle_challenge_reply(const Name& from, const wire::Pdu& pdu) {
  auto msg = wire::ChallengeReplyMsg::deserialize(pdu.payload);
  if (!msg.ok()) {
    drop_pdu(pdu, drop_malformed_, "malformed_challenge_reply");
    return;
  }
  auto advertiser = trust::Principal::deserialize(msg->principal);
  if (!advertiser.ok()) {
    drop_pdu(pdu, drop_malformed_, "invalid_principal");
    return;
  }
  auto pending_it = pending_ads_.find(pdu.flow_id);
  if (pending_it == pending_ads_.end() || pending_it->second.neighbor != from ||
      pending_it->second.advertiser.name() != advertiser->name()) {
    send_advertise_ok(from, false, "no pending advertisement", 0);
    return;
  }
  PendingAd pending = std::move(pending_it->second);
  pending_ads_.erase(pending_it);

  // 1. Proof of key possession, bound to this router (anti-relay).
  Bytes challenge_payload = concat(pending.nonce, self_.name().bytes());
  auto sig = crypto::Signature::decode(msg->nonce_sig);
  if (!sig || !advertiser->key().verify(challenge_payload, *sig)) {
    ads_rejected_.inc();
    net_.trace().record(pdu.trace_id, self_.name(), "verify", "challenge_sig_bad");
    send_advertise_ok(from, false, "challenge signature invalid", 0);
    return;
  }
  // 2. RtCert: the machine authorizes this router to speak for it.
  auto rt = trust::Cert::deserialize(msg->rt_cert);
  if (!rt.ok() ||
      !trust::verify_routing_delegation(*rt, *advertiser, self_, net_.sim().now(),
                                        &verify_cache_).ok()) {
    ads_rejected_.inc();
    net_.trace().record(pdu.trace_id, self_.name(), "verify", "rt_cert_bad");
    send_advertise_ok(from, false, "RtCert invalid", 0);
    return;
  }
  net_.trace().record(pdu.trace_id, self_.name(), "verify", "handshake_ok");
  rt_certs_.insert_or_assign(advertiser->name(), *rt);

  // Re-advertisements re-present the same names; the withdrawal book must
  // not grow (nor trigger repeated glookup unregisters) for duplicates.
  auto note_attached = [&](const Name& target) {
    auto& list = attached_via_[pending.neighbor];
    if (std::find(list.begin(), list.end(), target) == list.end()) {
      list.push_back(target);
    }
  };

  // 3. The advertiser's own name becomes directly routable, for as long as
  // the RtCert authorizes us to speak for it.
  fib_.upsert(advertiser->name(), pending.neighbor, rt->not_after_ns);
  note_attached(advertiser->name());
  if (glookup_ != nullptr) {
    GLookupService::Entry entry;
    entry.target = advertiser->name();
    entry.attachment_router = self_.name();
    entry.principal = advertiser->serialize();
    entry.expires_ns = rt->not_after_ns;
    Status st = glookup_->register_entry(std::move(entry));
    if (!st.ok()) {
      GDP_LOG(kWarn, "router") << "glookup principal registration failed: "
                               << st.error().to_string();
    }
  }

  // 4. Catalog advertisements: verify each delegation chain, install and
  // register those that check out.
  std::uint32_t accepted = 0;
  trust::Catalog catalog;
  for (const Bytes& record : pending.catalog_records) {
    if (!catalog.apply(record).ok()) {
      // Malformed catalog records are counted, not silently skipped — a
      // flood of garbage from one advertiser must show up in dumps.
      bad_catalog_records_.inc();
      GDP_LOG(kInfo, "router") << "bad catalog record from "
                               << advertiser->name().short_hex();
      continue;
    }
  }
  // Pre-warm the verify cache: collect every signature check the catalog's
  // delegation chains will need, batch-verify the cache misses with one
  // multi-scalar multiplication, and store the verdicts.  The sequential
  // ad.verify walk below then runs (unchanged) against a warm cache.
  {
    std::vector<trust::SignatureCheck> checks;
    for (const trust::Advertisement& ad : catalog.advertisements()) {
      trust::collect_advertisement_checks(ad, *advertiser, checks);
    }
    const trust::BatchWarmStats warm = trust::warm_verify_cache(
        verify_cache_, checks, batch_seed_, net_.sim().now());
    if (warm.batched != 0) {
      batch_size_.record(static_cast<double>(warm.batched));
      batch_accepted_.inc(warm.accepted);
      batch_rejected_.inc(warm.rejected);
      batch_bisections_.inc(warm.bisections);
    }
  }
  for (const trust::Advertisement& ad : catalog.advertisements()) {
    Status verdict = ad.verify(*advertiser, net_.sim().now(), &domain_,
                               &verify_cache_);
    if (!verdict.ok()) {
      ads_rejected_.inc();
      GDP_LOG(kInfo, "router") << "rejected advertisement for "
                               << ad.advertised.short_hex() << ": "
                               << verdict.error().to_string();
      continue;
    }
    // The route lives until whichever bound tightens first: the RtCert
    // authorizing us to speak for the advertiser, or the advertisement's
    // catalog expiry (as deferred by group extensions).
    std::int64_t route_expiry = catalog.effective_expiry_ns(ad);
    if (rt->not_after_ns > 0 &&
        (route_expiry <= 0 || rt->not_after_ns < route_expiry)) {
      route_expiry = rt->not_after_ns;
    }
    fib_.upsert(ad.advertised, pending.neighbor, route_expiry);
    note_attached(ad.advertised);
    ++accepted;
    ads_accepted_.inc();
    if (glookup_ != nullptr) {
      GLookupService::Entry entry;
      entry.target = ad.advertised;
      entry.attachment_router = self_.name();
      entry.evidence = ad.serialize();
      entry.principal = advertiser->serialize();
      entry.expires_ns = catalog.effective_expiry_ns(ad);
      entry.allowed_domains = ad.delegation.ad_cert.allowed_domains;
      Status st = glookup_->register_entry(std::move(entry));
      if (!st.ok()) {
        GDP_LOG(kWarn, "router") << "glookup registration failed: "
                                 << st.error().to_string();
      }
    }
  }
  // One snapshot publish for the whole handshake batch: the advertiser's
  // own route plus every accepted catalog entry become visible together.
  fib_.publish();
  // The catalog install may have grown the FIB well past the default
  // verify-cache capacity; re-size before the next delegation-chain check
  // so re-advertisements keep their cached verdicts (ROADMAP follow-on).
  autosize_verify_cache();
  send_advertise_ok(from, true, "", accepted);
}

void Router::neighbor_down(const Name& neighbor) {
  neighbor_down_events_.inc();
  // A dead link is the hardest health signal there is: eject the hop so
  // P2C route selection skips it until the probation window passes.
  neighbor_health_.eject(neighbor, net_.sim().now().count());
  auto it = attached_via_.find(neighbor);
  if (it != attached_via_.end()) {
    for (const Name& target : it->second) {
      // RtCerts are keyed by *advertiser* name, not by the neighbor the
      // handshake arrived over; the advertisers reachable through this
      // link are exactly the attached targets, so a withdrawn cert cannot
      // be reused by a re-attached advertiser elsewhere.
      rt_certs_.erase(target);
      const FibPublisher::Route* route = fib_.route(target);
      // Only purge if the route still points at the dead neighbor (it may
      // have been re-advertised elsewhere meanwhile).
      if (route != nullptr && route->next_hop == neighbor) {
        fib_.erase(target);
        if (glookup_ != nullptr) glookup_->unregister(target, self_.name());
      }
    }
    attached_via_.erase(it);
  }
  // Transit routes through the failed neighbor also die.  One publish
  // covers the whole withdrawal.
  fib_.erase_if([&](const Name&, const FibPublisher::Route& r) {
    return r.next_hop == neighbor;
  });
  fib_.publish();
}

void Router::neighbor_up(const Name& neighbor) {
  neighbor_up_events_.inc();
  // Link restored: credit a success so the hop re-earns healthy state
  // through probation once its ejection window passes.
  neighbor_health_.record_success(neighbor, net_.sim().now().count(),
                                  /*latency_ns=*/0);
  GDP_LOG(kInfo, "router") << "link to " << neighbor.short_hex()
                           << " restored; awaiting re-advertisement";
}

void Router::on_link_state(const Name& neighbor, bool up) {
  if (up) {
    neighbor_up(neighbor);
  } else {
    neighbor_down(neighbor);
  }
}

void Router::start_maintenance() {
  if (maintenance_running_) return;
  maintenance_running_ = true;
  schedule_maintenance();
}

void Router::schedule_maintenance() {
  net_.sim().schedule(maintenance_.sweep_interval, [this] {
    if (!maintenance_running_) return;
    maintenance_round();
    schedule_maintenance();
  });
}

std::size_t Router::maintenance_round() {
  const std::int64_t now = net_.sim().now().count();
  const std::size_t expired =
      fib_.erase_if([&](const Name&, const FibPublisher::Route& r) {
        return r.expires_ns > 0 && r.expires_ns < now;
      });
  fib_expired_.inc(expired);
  fib_.publish();
  for (auto it = rt_certs_.begin(); it != rt_certs_.end();) {
    if (it->second.not_after_ns < now) {
      it = rt_certs_.erase(it);
    } else {
      ++it;
    }
  }
  return expired;
}

bool Router::has_route(const Name& target) const {
  const FibPublisher::Route* route = fib_.route(target);
  return route != nullptr && !route_expired(route->expires_ns);
}

std::size_t Router::awaiting_route_count() const {
  std::size_t n = 0;
  for (const auto& [_, queue] : awaiting_route_) n += queue.size();
  return n;
}

void Router::send_advertise_ok(const Name& to, bool ok, std::string message,
                               std::uint32_t accepted) {
  wire::AdvertiseOkMsg msg;
  msg.ok = ok;
  msg.message = std::move(message);
  msg.accepted = accepted;
  wire::Pdu pdu;
  pdu.dst = to;
  pdu.src = self_.name();
  pdu.type = wire::MsgType::kAdvertiseOk;
  pdu.payload = msg.serialize();
  net_.send(self_.name(), to, std::move(pdu));
}

}  // namespace gdp::router
