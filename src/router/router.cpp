#include "router/router.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace gdp::router {

Router::Router(net::Network& net, const crypto::PrivateKey& key, std::string label,
               Name domain, std::shared_ptr<const Topology> topology)
    : net_(net),
      self_(trust::Principal::create(key, trust::Role::kRouter, std::move(label))),
      domain_(domain),
      topology_(std::move(topology)),
      metric_prefix_("router." + std::string(self_.label()) + "."),
      forwarded_(net_.metrics().counter(metric_prefix_ + "fwd.pdus")),
      dropped_(net_.metrics().counter(metric_prefix_ + "drop.pdus")),
      lookups_issued_(net_.metrics().counter(metric_prefix_ + "lookups.issued")),
      ads_accepted_(net_.metrics().counter(metric_prefix_ + "ads.accepted")),
      ads_rejected_(net_.metrics().counter(metric_prefix_ + "ads.rejected")),
      fib_hits_(net_.metrics().counter(metric_prefix_ + "fib.hits")),
      fib_misses_(net_.metrics().counter(metric_prefix_ + "fib.misses")),
      drop_ttl_(net_.metrics().counter(metric_prefix_ + "drop.ttl")),
      drop_no_route_(net_.metrics().counter(metric_prefix_ + "drop.no_route")),
      drop_no_glookup_(net_.metrics().counter(metric_prefix_ + "drop.no_glookup")),
      drop_bad_evidence_(
          net_.metrics().counter(metric_prefix_ + "drop.bad_evidence")),
      drop_stale_route_(
          net_.metrics().counter(metric_prefix_ + "drop.stale_route")),
      drop_next_hop_down_(
          net_.metrics().counter(metric_prefix_ + "drop.next_hop_unreachable")),
      drop_malformed_(net_.metrics().counter(metric_prefix_ + "drop.malformed")),
      drop_unhandled_(net_.metrics().counter(metric_prefix_ + "drop.unhandled")) {
  net_.attach(self_.name(), this);
}

void Router::drop_pdu(const wire::Pdu& pdu, telemetry::Counter& reason_counter,
                      const char* reason) {
  dropped_.inc();
  reason_counter.inc();
  net_.trace().record(pdu.trace_id, self_.name(), "drop", reason);
}

void Router::autosize_verify_cache() {
  if (verify_cache_pinned_) return;
  const std::size_t want =
      std::max<std::size_t>(trust::VerifyCache::kDefaultCapacity, 2 * fib_.size());
  if (want > verify_cache_.capacity()) verify_cache_.set_capacity(want);
}

void Router::publish_metrics() {
  auto& m = net_.metrics();
  m.counter(metric_prefix_ + "fib.size").set(fib_.size());
  m.counter(metric_prefix_ + "verify_cache.hits").set(verify_cache_.hits());
  m.counter(metric_prefix_ + "verify_cache.misses").set(verify_cache_.misses());
  m.counter(metric_prefix_ + "verify_cache.size").set(verify_cache_.size());
  m.counter(metric_prefix_ + "verify_cache.capacity")
      .set(verify_cache_.capacity());
}

void Router::on_pdu(const Name& from, const wire::Pdu& pdu) {
  net_.trace().record(pdu.trace_id, self_.name(), "recv");
  if (pdu.dst == self_.name()) {
    switch (pdu.type) {
      case wire::MsgType::kAdvertise:
        handle_advertise(from, pdu);
        return;
      case wire::MsgType::kChallengeReply:
        handle_challenge_reply(from, pdu);
        return;
      case wire::MsgType::kLookupReply:
        handle_lookup_reply(pdu);
        return;
      default:
        // Benchmarks may address raw traffic to the router itself.
        if (pdu.type == wire::MsgType::kBenchData) {
          net_.trace().record(pdu.trace_id, self_.name(), "deliver", "bench_sink");
          return;
        }
        GDP_LOG(kWarn, "router") << "unhandled control PDU type "
                                 << static_cast<int>(pdu.type);
        drop_pdu(pdu, drop_unhandled_, "unhandled_type");
        return;
    }
  }
  forward(pdu);
}

void Router::forward(wire::Pdu pdu) {
  if (pdu.ttl == 0) {
    drop_pdu(pdu, drop_ttl_, "ttl");
    return;
  }
  pdu.ttl -= 1;
  auto it = fib_.find(pdu.dst);
  if (it != fib_.end()) {
    fib_hits_.inc();
    net_.trace().record(pdu.trace_id, self_.name(), "fib_lookup", "hit");
    forwarded_.inc();
    net_.trace().record(pdu.trace_id, self_.name(), "forward");
    net_.send(self_.name(), it->second, std::move(pdu));
    return;
  }
  fib_misses_.inc();
  net_.trace().record(pdu.trace_id, self_.name(), "fib_lookup", "miss");
  if (glookup_ == nullptr) {
    drop_pdu(pdu, drop_no_glookup_, "no_glookup");
    return;
  }
  auto& queue = awaiting_route_[pdu.dst];
  queue.push_back(std::move(pdu));
  if (queue.size() == 1) start_lookup(queue.back().dst);
}

void Router::start_lookup(const Name& target) {
  lookups_issued_.inc();
  wire::LookupMsg msg;
  msg.target = target;
  msg.querying_router = self_.name();
  msg.nonce = net_.sim().rng().next_u64();
  wire::Pdu pdu;
  pdu.dst = glookup_->name();
  pdu.src = self_.name();
  pdu.type = wire::MsgType::kLookup;
  pdu.flow_id = msg.nonce;
  pdu.payload = msg.serialize();
  net_.send(self_.name(), glookup_->name(), std::move(pdu));
}

void Router::handle_lookup_reply(const wire::Pdu& pdu) {
  auto reply = wire::LookupReplyMsg::deserialize(pdu.payload);
  if (!reply.ok()) {
    drop_pdu(pdu, drop_malformed_, "malformed_lookup_reply");
    return;
  }
  auto waiting = awaiting_route_.find(reply->target);
  // Dropping a queued PDU accounts the *queued* PDU's trace id, so its
  // timeline ends with the drop reason rather than going silent.
  auto drop_waiting = [&](telemetry::Counter& reason_counter, const char* reason) {
    if (waiting == awaiting_route_.end()) return;
    for (const wire::Pdu& p : waiting->second) drop_pdu(p, reason_counter, reason);
    awaiting_route_.erase(waiting);
  };
  if (!reply->found) {
    drop_waiting(drop_no_route_, "no_route");
    return;
  }
  // Independently verify the routing state before installing it — a
  // compromised lookup service must not be able to plant black holes for
  // delegated names.
  if (!reply->evidence.empty()) {
    auto ad = trust::Advertisement::deserialize(reply->evidence);
    auto advertiser = trust::Principal::deserialize(reply->principal);
    if (!ad.ok() || !advertiser.ok() ||
        ad->advertised != reply->target ||
        !ad->verify(*advertiser, net_.sim().now(), nullptr, &verify_cache_).ok()) {
      GDP_LOG(kWarn, "router") << "rejecting unverifiable lookup reply for "
                               << reply->target.short_hex();
      net_.trace().record(pdu.trace_id, self_.name(), "verify", "evidence_bad");
      drop_waiting(drop_bad_evidence_, "bad_evidence");
      return;
    }
    net_.trace().record(pdu.trace_id, self_.name(), "verify", "evidence_ok");
  }
  const Name next_hop =
      reply->attachment_router == self_.name() ? reply->target : reply->next_hop;
  if (next_hop != self_.name() && net_.adjacent(self_.name(), next_hop)) {
    fib_[reply->target] = next_hop;
    autosize_verify_cache();
  } else if (reply->attachment_router == self_.name()) {
    // The target was supposedly attached here but is not adjacent: stale.
    drop_waiting(drop_stale_route_, "stale_route");
    return;
  } else {
    dropped_.inc();
    drop_next_hop_down_.inc();
    net_.trace().record(pdu.trace_id, self_.name(), "drop",
                        "next_hop_unreachable");
    return;
  }
  if (waiting != awaiting_route_.end()) {
    std::vector<wire::Pdu> queued = std::move(waiting->second);
    awaiting_route_.erase(waiting);
    for (wire::Pdu& p : queued) {
      forwarded_.inc();
      net_.trace().record(p.trace_id, self_.name(), "forward", "post_lookup");
      net_.send(self_.name(), fib_[reply->target], std::move(p));
    }
  }
}

void Router::handle_advertise(const Name& from, const wire::Pdu& pdu) {
  auto msg = wire::AdvertiseMsg::deserialize(pdu.payload);
  if (!msg.ok()) {
    drop_pdu(pdu, drop_malformed_, "malformed_advertisement");
    send_advertise_ok(from, false, "malformed advertisement", 0);
    return;
  }
  auto advertiser = trust::Principal::deserialize(msg->principal);
  if (!advertiser.ok()) {
    drop_pdu(pdu, drop_malformed_, "invalid_principal");
    send_advertise_ok(from, false, "invalid principal", 0);
    return;
  }
  PendingAd pending{from, *advertiser, std::move(msg->catalog_records),
                    net_.sim().rng().next_bytes(32)};
  wire::ChallengeMsg challenge;
  challenge.nonce = pending.nonce;
  // The router mints the handshake id: endpoint flow ids are only unique
  // per endpoint, and the challenge reply echoes our flow id anyway.
  const std::uint64_t challenge_id = net_.sim().rng().next_u64();
  pending_ads_.insert_or_assign(challenge_id, std::move(pending));

  wire::Pdu out;
  out.dst = from;
  out.src = self_.name();
  out.type = wire::MsgType::kChallenge;
  out.flow_id = challenge_id;
  out.payload = challenge.serialize();
  net_.send(self_.name(), from, std::move(out));
}

void Router::handle_challenge_reply(const Name& from, const wire::Pdu& pdu) {
  auto msg = wire::ChallengeReplyMsg::deserialize(pdu.payload);
  if (!msg.ok()) {
    drop_pdu(pdu, drop_malformed_, "malformed_challenge_reply");
    return;
  }
  auto advertiser = trust::Principal::deserialize(msg->principal);
  if (!advertiser.ok()) {
    drop_pdu(pdu, drop_malformed_, "invalid_principal");
    return;
  }
  auto pending_it = pending_ads_.find(pdu.flow_id);
  if (pending_it == pending_ads_.end() || pending_it->second.neighbor != from ||
      pending_it->second.advertiser.name() != advertiser->name()) {
    send_advertise_ok(from, false, "no pending advertisement", 0);
    return;
  }
  PendingAd pending = std::move(pending_it->second);
  pending_ads_.erase(pending_it);

  // 1. Proof of key possession, bound to this router (anti-relay).
  Bytes challenge_payload = concat(pending.nonce, self_.name().bytes());
  auto sig = crypto::Signature::decode(msg->nonce_sig);
  if (!sig || !advertiser->key().verify(challenge_payload, *sig)) {
    ads_rejected_.inc();
    net_.trace().record(pdu.trace_id, self_.name(), "verify", "challenge_sig_bad");
    send_advertise_ok(from, false, "challenge signature invalid", 0);
    return;
  }
  // 2. RtCert: the machine authorizes this router to speak for it.
  auto rt = trust::Cert::deserialize(msg->rt_cert);
  if (!rt.ok() ||
      !trust::verify_routing_delegation(*rt, *advertiser, self_, net_.sim().now(),
                                        &verify_cache_).ok()) {
    ads_rejected_.inc();
    net_.trace().record(pdu.trace_id, self_.name(), "verify", "rt_cert_bad");
    send_advertise_ok(from, false, "RtCert invalid", 0);
    return;
  }
  net_.trace().record(pdu.trace_id, self_.name(), "verify", "handshake_ok");
  rt_certs_.insert_or_assign(advertiser->name(), *rt);

  // 3. The advertiser's own name becomes directly routable.
  fib_[advertiser->name()] = pending.neighbor;
  attached_via_[pending.neighbor].push_back(advertiser->name());
  if (glookup_ != nullptr) {
    GLookupService::Entry entry;
    entry.target = advertiser->name();
    entry.attachment_router = self_.name();
    entry.principal = advertiser->serialize();
    entry.expires_ns = rt->not_after_ns;
    Status st = glookup_->register_entry(std::move(entry));
    if (!st.ok()) {
      GDP_LOG(kWarn, "router") << "glookup principal registration failed: "
                               << st.error().to_string();
    }
  }

  // 4. Catalog advertisements: verify each delegation chain, install and
  // register those that check out.
  std::uint32_t accepted = 0;
  trust::Catalog catalog;
  for (const Bytes& record : pending.catalog_records) {
    if (!catalog.apply(record).ok()) continue;
  }
  for (const trust::Advertisement& ad : catalog.advertisements()) {
    Status verdict = ad.verify(*advertiser, net_.sim().now(), &domain_,
                               &verify_cache_);
    if (!verdict.ok()) {
      ads_rejected_.inc();
      GDP_LOG(kInfo, "router") << "rejected advertisement for "
                               << ad.advertised.short_hex() << ": "
                               << verdict.error().to_string();
      continue;
    }
    fib_[ad.advertised] = pending.neighbor;
    attached_via_[pending.neighbor].push_back(ad.advertised);
    ++accepted;
    ads_accepted_.inc();
    if (glookup_ != nullptr) {
      GLookupService::Entry entry;
      entry.target = ad.advertised;
      entry.attachment_router = self_.name();
      entry.evidence = ad.serialize();
      entry.principal = advertiser->serialize();
      entry.expires_ns = catalog.effective_expiry_ns(ad);
      entry.allowed_domains = ad.delegation.ad_cert.allowed_domains;
      Status st = glookup_->register_entry(std::move(entry));
      if (!st.ok()) {
        GDP_LOG(kWarn, "router") << "glookup registration failed: "
                                 << st.error().to_string();
      }
    }
  }
  // The catalog install may have grown the FIB well past the default
  // verify-cache capacity; re-size before the next delegation-chain check
  // so re-advertisements keep their cached verdicts (ROADMAP follow-on).
  autosize_verify_cache();
  send_advertise_ok(from, true, "", accepted);
}

void Router::neighbor_down(const Name& neighbor) {
  auto it = attached_via_.find(neighbor);
  if (it != attached_via_.end()) {
    for (const Name& target : it->second) {
      auto fib_it = fib_.find(target);
      // Only purge if the route still points at the dead neighbor (it may
      // have been re-advertised elsewhere meanwhile).
      if (fib_it != fib_.end() && fib_it->second == neighbor) {
        fib_.erase(fib_it);
        if (glookup_ != nullptr) glookup_->unregister(target, self_.name());
      }
    }
    attached_via_.erase(it);
  }
  rt_certs_.erase(neighbor);
  // Transit routes through the failed neighbor also die.
  for (auto fib_it = fib_.begin(); fib_it != fib_.end();) {
    if (fib_it->second == neighbor) {
      fib_it = fib_.erase(fib_it);
    } else {
      ++fib_it;
    }
  }
}

void Router::send_advertise_ok(const Name& to, bool ok, std::string message,
                               std::uint32_t accepted) {
  wire::AdvertiseOkMsg msg;
  msg.ok = ok;
  msg.message = std::move(message);
  msg.accepted = accepted;
  wire::Pdu pdu;
  pdu.dst = to;
  pdu.src = self_.name();
  pdu.type = wire::MsgType::kAdvertiseOk;
  pdu.payload = msg.serialize();
  net_.send(self_.name(), to, std::move(pdu));
}

}  // namespace gdp::router
