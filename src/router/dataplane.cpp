#include "router/dataplane.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "common/buffer.hpp"
#include "telemetry/perfetto.hpp"

namespace gdp::router {

namespace {

using telemetry::FlightDropReason;
using telemetry::FlightEventType;

// splitmix64 finalizer over (first 8 bytes of dst) ^ seed: cheap, and the
// seed decorrelates shard ownership from the FIB's own hash.
std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

}  // namespace

ShardedDataPlane::ShardedDataPlane(Config cfg, FibPublisher& fib, EgressFn egress)
    : cfg_(cfg),
      fib_(fib),
      egress_(std::move(egress)),
      stall_submit_(ingress_metrics_.counter("dp.stall.submit_full")),
      shed_bench_(ingress_metrics_.counter("dp.drop.shed_bench")) {
  if (cfg_.num_shards == 0) cfg_.num_shards = 1;
  const char* det = std::getenv("GDP_DETERMINISTIC");
  if (det != nullptr && det[0] != '\0') cfg_.deterministic = true;
  shards_.reserve(cfg_.num_shards);
  for (std::size_t i = 0; i < cfg_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(cfg_.ring_capacity));
  }
  for (auto& s : shards_) {
    s->handoff.reserve(cfg_.num_shards);
    for (std::size_t p = 0; p < cfg_.num_shards; ++p) {
      s->handoff.push_back(
          std::make_unique<net::SpscRing<wire::PduView>>(cfg_.ring_capacity));
    }
    // Register even in deterministic mode: the publisher then exercises
    // the same reclamation bookkeeping in both backends.
    s->reader = fib_.register_reader();
    s->reader->quiesce();
  }
  // One recorder track per shard worker plus the ingress producer.  The
  // recorder exists even when disabled so the accessor surface is stable;
  // a disabled gate never samples and record_always() no-ops.
  telemetry::FlightRecorder::Config rc = cfg_.recorder;
  if (rc.seed == 0) rc.seed = cfg_.seed;
  rec_ = std::make_unique<telemetry::FlightRecorder>(cfg_.num_shards + 1, rc);
}

ShardedDataPlane::~ShardedDataPlane() {
  stop();
  // Deterministic-mode teardown may leave PDUs queued (no stop() drain);
  // discard them with full drop accounting so nothing vanishes silently.
  discard_queued();
  // Workers are gone; their reader slots must stop gating reclamation.
  for (auto& s : shards_) s->reader->retire();
}

std::size_t ShardedDataPlane::shard_of(BytesView dst) const {
  std::uint64_t h;
  std::memcpy(&h, dst.data(), sizeof(h));
  return static_cast<std::size_t>(mix(h ^ cfg_.seed) % shards_.size());
}

bool ShardedDataPlane::submit(wire::PduView&& pdu) {
  const std::size_t shard = rr_next_;
  rr_next_ = (rr_next_ + 1) % shards_.size();
  return submit_to(shard, std::move(pdu));
}

bool ShardedDataPlane::submit_to(std::size_t shard, wire::PduView&& pdu) {
  // Sampling gate on the ingress producer's own track (single-producer by
  // the API contract, so the track stays single-writer).
  const bool traced = rec_->tick(ingress_track());
  const std::uint64_t tid = traced ? pdu.trace_id() : 0;
  // Ingress watermark shed: best-effort bench traffic is the first (and
  // only) class discarded here, before it can crowd control or durability
  // frames out of the ring.  Dropping the view releases its segment; the
  // frame is "accepted" from the producer's perspective (true), its fate
  // recorded by the counter + drop event — never a silent loss.
  if (cfg_.shed_bench_watermark > 0 &&
      pdu.type() == wire::MsgType::kBenchData &&
      shards_[shard]->ingress.size() >= cfg_.shed_bench_watermark) {
    shed_bench_.inc();
    if (traced) {
      rec_->record(ingress_track(), FlightEventType::kDrop, tid,
                   static_cast<std::uint64_t>(FlightDropReason::kShedBench));
    }
    wire::PduView discard = std::move(pdu);
    (void)discard;
    return true;
  }
  // try_push only consumes `pdu` on success; a false return leaves the
  // caller's frame intact for retry (by-value parameters here would
  // destroy the segment on a full ring and feed retries an empty view).
  if (!shards_[shard]->ingress.try_push(std::move(pdu))) {
    stall_submit_.inc();
    if (traced) {
      rec_->record(ingress_track(), FlightEventType::kStall, tid, shard);
    }
    return false;
  }
  if (traced) {
    rec_->record(ingress_track(), FlightEventType::kSubmit, tid, shard);
  }
  return true;
}

bool ShardedDataPlane::resubmit(std::size_t shard, wire::PduView&& pdu) {
  // handoff[shard] of shard `shard` carries only self-produced traffic:
  // drain_once never routes cross-shard PDUs through it (owner == producer
  // is handled inline), so the egress hook is its sole producer.  No
  // sampling gate here: the PDU was already gated at dequeue this hop, and
  // its next hop records kHandoffIn when the ring is consumed — a second
  // tick would distort the per-PDU cadence and double the gate cost on
  // chained workloads.
  Shard& s = *shards_[shard];
  if (!s.handoff[shard]->try_push(std::move(pdu))) {
    s.stall_resubmit.inc();
    return false;
  }
  return true;
}

void ShardedDataPlane::process(Shard& s, std::size_t shard_idx,
                               wire::PduView pdu, std::int64_t t0) {
  const bool traced = t0 != 0;
  if (pdu.ttl() == 0) {
    s.dropped.inc();
    s.drop_ttl.inc();
    rec_->record_always(shard_idx, FlightEventType::kDrop, pdu.trace_id(),
                        static_cast<std::uint64_t>(FlightDropReason::kTtl));
    return;  // dropping the view releases the segment
  }
  const FibSnapshot::Entry* e = fib_.snapshot()->find(pdu.dst_bytes());
  if (traced) {
    // Reuse the span-start timestamp: one clock read serves the whole
    // sampled sequence (clock calls dominate recording cost).
    rec_->record_at(shard_idx, t0, FlightEventType::kFibLookup,
                    pdu.trace_id(), e != nullptr ? 1 : 0);
  }
  if (e == nullptr) {
    s.dropped.inc();
    s.drop_no_route.inc();
    rec_->record_always(shard_idx, FlightEventType::kDrop, pdu.trace_id(),
                        static_cast<std::uint64_t>(FlightDropReason::kNoRoute));
    return;
  }
  const std::int64_t now = now_ns_.load(std::memory_order_relaxed);
  if (e->expires_ns > 0 && e->expires_ns < now) {
    s.dropped.inc();
    s.drop_expired.inc();
    rec_->record_always(shard_idx, FlightEventType::kDrop, pdu.trace_id(),
                        static_cast<std::uint64_t>(FlightDropReason::kExpired));
    return;
  }
  const std::uint64_t tid = traced ? pdu.trace_id() : 0;
  pdu.dec_ttl();
  s.fwd_pdus.inc();
  s.fwd_bytes.inc(pdu.wire_size());
  egress_(shard_idx, e->next_hop, std::move(pdu));
  if (traced) {
    // The forward span covers dequeue-to-egress-return (the full
    // per-PDU cost on this worker); its wall duration rides in the arg
    // and feeds the segregated latency histogram.
    const std::int64_t dur = std::max<std::int64_t>(rec_->now_ns() - t0, 0);
    rec_->record_at(shard_idx, t0, FlightEventType::kForward, tid,
                    static_cast<std::uint64_t>(dur));
    s.fwd_latency.record(static_cast<std::uint64_t>(dur));
  }
}

std::size_t ShardedDataPlane::drain_once(std::size_t shard_idx,
                                         bool inline_drain) {
  Shard& s = *shards_[shard_idx];
  std::size_t moved = 0;
  wire::PduView pdu;
  const std::size_t occ0 = s.ingress.size();
  // Ingress first: PDUs the spreader gave us, owned or not.
  for (std::size_t n = 0; n < cfg_.batch && s.ingress.try_pop(pdu); ++n) {
    ++moved;
    // One clock read covers a sampled PDU's whole event sequence (t0 == 0
    // means untraced); per-event clock calls would triple recording cost.
    const std::int64_t t0 = rec_->tick(shard_idx) ? rec_->now_ns() : 0;
    const bool traced = t0 != 0;
    if (traced) {
      rec_->record_at(shard_idx, t0, FlightEventType::kDequeue,
                      pdu.trace_id(), occ0);
    }
    const std::size_t owner = shard_of(pdu.dst_bytes());
    if (owner == shard_idx) {
      process(s, shard_idx, std::move(pdu), t0);
      continue;
    }
    if (traced) {
      rec_->record_at(shard_idx, t0, FlightEventType::kHandoffOut,
                      pdu.trace_id(), owner);
    }
    // Cross-shard handoff over the dedicated (this -> owner) ring.  A
    // full ring backpressures this worker, never blocks the owner.
    auto& ring = *shards_[owner]->handoff[shard_idx];
    bool stall_recorded = false;
    for (;;) {
      if (ring.try_push(std::move(pdu))) {
        s.handoff_out.inc();
        break;
      }
      s.stall_handoff.inc();
      if (traced && !stall_recorded) {
        stall_recorded = true;
        rec_->record_at(shard_idx, t0, FlightEventType::kStall,
                        pdu.trace_id(), owner);
      }
      if (inline_drain) {
        // Single-threaded execution: this thread *is* every consumer —
        // drain the owner so the handoff can never wedge.
        drain_once(owner, true);
      } else if (running_.load(std::memory_order_relaxed)) {
        // The owner's worker will drain it; let it run.
        std::this_thread::yield();
      } else {
        // Shutdown window: the owner may already have exited, so blocking
        // could wedge and draining its ring would race a live consumer.
        // Drop with accounting; stop() drains leftovers single-threaded.
        s.dropped.inc();
        s.drop_handoff_shutdown.inc();
        rec_->record_always(
            shard_idx, FlightEventType::kDrop, pdu.trace_id(),
            static_cast<std::uint64_t>(FlightDropReason::kHandoffShutdown));
        pdu = wire::PduView();
        break;
      }
    }
  }
  // Handoff rings, fixed producer order (determinism).
  for (std::size_t p = 0; p < shards_.size(); ++p) {
    auto& ring = *s.handoff[p];
    for (std::size_t n = 0; n < cfg_.batch && ring.try_pop(pdu); ++n) {
      ++moved;
      s.handoff_in.inc();
      const std::int64_t t0 = rec_->tick(shard_idx) ? rec_->now_ns() : 0;
      if (t0 != 0) {
        rec_->record_at(shard_idx, t0, FlightEventType::kHandoffIn,
                        pdu.trace_id(), p);
      }
      process(s, shard_idx, std::move(pdu), t0);
    }
  }
  if (moved != 0) {
    // Deterministic pressure histograms: occupancy seen at drain start and
    // batch size moved.  Counts of counts — no clocks — so they merge
    // byte-identically into stats_json in lockstep mode.
    s.ring_occupancy.record(occ0);
    s.batch_moved.record(moved);
  }
  return moved;
}

void ShardedDataPlane::worker_loop(std::size_t shard_idx) {
  Shard& s = *shards_[shard_idx];
  while (running_.load(std::memory_order_relaxed)) {
    const std::size_t moved = drain_once(shard_idx, /*inline_drain=*/false);
    // Quiescent point: no snapshot pointer is held between batches.
    s.reader->quiesce();
    if (moved == 0) std::this_thread::yield();
  }
  s.reader->quiesce();
}

void ShardedDataPlane::start() {
  if (cfg_.deterministic || running_.load(std::memory_order_relaxed)) return;
  running_.store(true, std::memory_order_release);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->thread = std::thread([this, i] { worker_loop(i); });
  }
}

void ShardedDataPlane::stop() {
  if (!running_.load(std::memory_order_relaxed)) return;
  running_.store(false, std::memory_order_release);
  for (auto& s : shards_) {
    if (s->thread.joinable()) s->thread.join();
  }
  // Workers are joined; drain whatever the shutdown window left queued.
  run_until_idle();
}

void ShardedDataPlane::run_until_idle() {
  if (running_.load(std::memory_order_relaxed)) return;  // workers own the rings
  std::size_t moved;
  do {
    moved = 0;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      moved += drain_once(i, /*inline_drain=*/true);
    }
    for (auto& s : shards_) s->reader->quiesce();
  } while (moved != 0);
}

void ShardedDataPlane::discard_queued() {
  wire::PduView pdu;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& s = *shards_[i];
    auto discard = [&](wire::PduView&& p) {
      s.dropped.inc();
      s.drop_shutdown_drain.inc();
      rec_->record_always(
          i, FlightEventType::kDrop, p.trace_id(),
          static_cast<std::uint64_t>(FlightDropReason::kShutdownDrain));
    };
    while (s.ingress.try_pop(pdu)) discard(std::move(pdu));
    for (auto& ring : s.handoff) {
      while (ring->try_pop(pdu)) discard(std::move(pdu));
    }
  }
}

std::uint64_t ShardedDataPlane::forwarded() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->fwd_pdus.value();
  return total;
}

std::uint64_t ShardedDataPlane::forwarded_bytes() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->fwd_bytes.value();
  return total;
}

std::uint64_t ShardedDataPlane::handoffs() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->handoff_out.value();
  return total;
}

std::uint64_t ShardedDataPlane::dropped() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->dropped.value();
  return total;
}

std::string ShardedDataPlane::stats_json(int indent) const {
  telemetry::MetricsRegistry merged;
  for (const auto& s : shards_) merged.merge_from(s->metrics);
  merged.merge_from(ingress_metrics_);
  merged.counter("dp.shards").set(shards_.size());
  // Watermark gauges are maxima, not sums, so they bypass merge_from.
  std::uint64_t ingress_hw = 0, handoff_hw = 0;
  for (const auto& s : shards_) {
    ingress_hw = std::max<std::uint64_t>(ingress_hw, s->ingress.high_water());
    for (const auto& r : s->handoff) {
      handoff_hw = std::max<std::uint64_t>(handoff_hw, r->high_water());
    }
  }
  merged.counter("dp.watermark.ingress_hw").set(ingress_hw);
  merged.counter("dp.watermark.handoff_hw").set(handoff_hw);
  rec_->publish_stats(merged, "dp.");
  // Deliberately no publish_buffer_stats() here: the pool gauges are
  // process-cumulative, which would break byte-identical reruns.  Benches
  // publish them into their own registry when gating allocations.
  return merged.to_json(indent);
}

std::string ShardedDataPlane::wall_json(int indent) const {
  telemetry::MetricsRegistry merged;
  for (const auto& s : shards_) merged.merge_from(s->wall_metrics);
  return merged.to_json(indent);
}

std::vector<std::string> ShardedDataPlane::recorder_track_names() const {
  std::vector<std::string> names;
  names.reserve(shards_.size() + 1);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    names.push_back("shard" + std::to_string(i));
  }
  names.push_back("ingress");
  return names;
}

std::string ShardedDataPlane::perfetto_json() const {
  return telemetry::PerfettoExporter::from_recorder(*rec_,
                                                    recorder_track_names());
}

const telemetry::Histogram& ShardedDataPlane::fwd_latency(
    std::size_t shard) const {
  return shards_[shard]->fwd_latency;
}

void ShardedDataPlane::sample_pressure(std::int64_t t_ns,
                                       telemetry::StatsTimeline& tl) const {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const Shard& s = *shards_[i];
    const std::string p = "dp.shard" + std::to_string(i) + ".";
    tl.append(p + "ingress.occ", t_ns, s.ingress.size());
    tl.append(p + "ingress.hw", t_ns, s.ingress.high_water());
    std::uint64_t occ = 0, hw = 0;
    for (const auto& r : s.handoff) {
      occ += r->size();
      hw = std::max<std::uint64_t>(hw, r->high_water());
    }
    tl.append(p + "handoff.occ", t_ns, occ);
    tl.append(p + "handoff.hw", t_ns, hw);
    tl.append(p + "fwd.pdus", t_ns, s.fwd_pdus.value());
  }
  const BufferStats::Snapshot b = BufferStats::snapshot();
  tl.append("buffer.pool.allocs", t_ns, b.segment_allocs);
  tl.append("buffer.pool.reuses", t_ns, b.segment_reuses);
  tl.append("buffer.pool.live", t_ns, b.live_segments());
}

}  // namespace gdp::router
