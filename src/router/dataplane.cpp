#include "router/dataplane.hpp"

#include <cstdlib>
#include <cstring>

namespace gdp::router {

namespace {

// splitmix64 finalizer over (first 8 bytes of dst) ^ seed: cheap, and the
// seed decorrelates shard ownership from the FIB's own hash.
std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

}  // namespace

ShardedDataPlane::ShardedDataPlane(Config cfg, FibPublisher& fib, EgressFn egress)
    : cfg_(cfg), fib_(fib), egress_(std::move(egress)) {
  if (cfg_.num_shards == 0) cfg_.num_shards = 1;
  const char* det = std::getenv("GDP_DETERMINISTIC");
  if (det != nullptr && det[0] != '\0') cfg_.deterministic = true;
  shards_.reserve(cfg_.num_shards);
  for (std::size_t i = 0; i < cfg_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(cfg_.ring_capacity));
  }
  for (auto& s : shards_) {
    s->handoff.reserve(cfg_.num_shards);
    for (std::size_t p = 0; p < cfg_.num_shards; ++p) {
      s->handoff.push_back(
          std::make_unique<net::SpscRing<wire::PduView>>(cfg_.ring_capacity));
    }
    // Register even in deterministic mode: the publisher then exercises
    // the same reclamation bookkeeping in both backends.
    s->reader = fib_.register_reader();
    s->reader->quiesce();
  }
}

ShardedDataPlane::~ShardedDataPlane() {
  stop();
  // Workers are gone; their reader slots must stop gating reclamation.
  for (auto& s : shards_) s->reader->retire();
}

std::size_t ShardedDataPlane::shard_of(BytesView dst) const {
  std::uint64_t h;
  std::memcpy(&h, dst.data(), sizeof(h));
  return static_cast<std::size_t>(mix(h ^ cfg_.seed) % shards_.size());
}

bool ShardedDataPlane::submit(wire::PduView&& pdu) {
  const std::size_t shard = rr_next_;
  rr_next_ = (rr_next_ + 1) % shards_.size();
  return submit_to(shard, std::move(pdu));
}

bool ShardedDataPlane::submit_to(std::size_t shard, wire::PduView&& pdu) {
  // try_push only consumes `pdu` on success; a false return leaves the
  // caller's frame intact for retry (by-value parameters here would
  // destroy the segment on a full ring and feed retries an empty view).
  return shards_[shard]->ingress.try_push(std::move(pdu));
}

bool ShardedDataPlane::resubmit(std::size_t shard, wire::PduView&& pdu) {
  // handoff[shard] of shard `shard` carries only self-produced traffic:
  // drain_once never routes cross-shard PDUs through it (owner == producer
  // is handled inline), so the egress hook is its sole producer.
  return shards_[shard]->handoff[shard]->try_push(std::move(pdu));
}

void ShardedDataPlane::process(Shard& s, std::size_t shard_idx,
                               wire::PduView pdu) {
  if (pdu.ttl() == 0) {
    s.dropped.inc();
    s.drop_ttl.inc();
    return;  // dropping the view releases the segment
  }
  const FibSnapshot::Entry* e = fib_.snapshot()->find(pdu.dst_bytes());
  if (e == nullptr) {
    s.dropped.inc();
    s.drop_no_route.inc();
    return;
  }
  const std::int64_t now = now_ns_.load(std::memory_order_relaxed);
  if (e->expires_ns > 0 && e->expires_ns < now) {
    s.dropped.inc();
    s.drop_expired.inc();
    return;
  }
  pdu.dec_ttl();
  s.fwd_pdus.inc();
  s.fwd_bytes.inc(pdu.wire_size());
  egress_(shard_idx, e->next_hop, std::move(pdu));
}

std::size_t ShardedDataPlane::drain_once(std::size_t shard_idx,
                                         bool inline_drain) {
  Shard& s = *shards_[shard_idx];
  std::size_t moved = 0;
  wire::PduView pdu;
  // Ingress first: PDUs the spreader gave us, owned or not.
  for (std::size_t n = 0; n < cfg_.batch && s.ingress.try_pop(pdu); ++n) {
    ++moved;
    const std::size_t owner = shard_of(pdu.dst_bytes());
    if (owner == shard_idx) {
      process(s, shard_idx, std::move(pdu));
      continue;
    }
    // Cross-shard handoff over the dedicated (this -> owner) ring.  A
    // full ring backpressures this worker, never blocks the owner.
    auto& ring = *shards_[owner]->handoff[shard_idx];
    for (;;) {
      if (ring.try_push(std::move(pdu))) {
        s.handoff_out.inc();
        break;
      }
      if (inline_drain) {
        // Single-threaded execution: this thread *is* every consumer —
        // drain the owner so the handoff can never wedge.
        drain_once(owner, true);
      } else if (running_.load(std::memory_order_relaxed)) {
        // The owner's worker will drain it; let it run.
        std::this_thread::yield();
      } else {
        // Shutdown window: the owner may already have exited, so blocking
        // could wedge and draining its ring would race a live consumer.
        // Drop with accounting; stop() drains leftovers single-threaded.
        s.dropped.inc();
        pdu = wire::PduView();
        break;
      }
    }
  }
  // Handoff rings, fixed producer order (determinism).
  for (std::size_t p = 0; p < shards_.size(); ++p) {
    auto& ring = *s.handoff[p];
    for (std::size_t n = 0; n < cfg_.batch && ring.try_pop(pdu); ++n) {
      ++moved;
      s.handoff_in.inc();
      process(s, shard_idx, std::move(pdu));
    }
  }
  return moved;
}

void ShardedDataPlane::worker_loop(std::size_t shard_idx) {
  Shard& s = *shards_[shard_idx];
  while (running_.load(std::memory_order_relaxed)) {
    const std::size_t moved = drain_once(shard_idx, /*inline_drain=*/false);
    // Quiescent point: no snapshot pointer is held between batches.
    s.reader->quiesce();
    if (moved == 0) std::this_thread::yield();
  }
  s.reader->quiesce();
}

void ShardedDataPlane::start() {
  if (cfg_.deterministic || running_.load(std::memory_order_relaxed)) return;
  running_.store(true, std::memory_order_release);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->thread = std::thread([this, i] { worker_loop(i); });
  }
}

void ShardedDataPlane::stop() {
  if (!running_.load(std::memory_order_relaxed)) return;
  running_.store(false, std::memory_order_release);
  for (auto& s : shards_) {
    if (s->thread.joinable()) s->thread.join();
  }
  // Workers are joined; drain whatever the shutdown window left queued.
  run_until_idle();
}

void ShardedDataPlane::run_until_idle() {
  if (running_.load(std::memory_order_relaxed)) return;  // workers own the rings
  std::size_t moved;
  do {
    moved = 0;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      moved += drain_once(i, /*inline_drain=*/true);
    }
    for (auto& s : shards_) s->reader->quiesce();
  } while (moved != 0);
}

std::uint64_t ShardedDataPlane::forwarded() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->fwd_pdus.value();
  return total;
}

std::uint64_t ShardedDataPlane::forwarded_bytes() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->fwd_bytes.value();
  return total;
}

std::uint64_t ShardedDataPlane::handoffs() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->handoff_out.value();
  return total;
}

std::uint64_t ShardedDataPlane::dropped() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->dropped.value();
  return total;
}

std::string ShardedDataPlane::stats_json(int indent) const {
  telemetry::MetricsRegistry merged;
  for (const auto& s : shards_) merged.merge_from(s->metrics);
  merged.counter("dp.shards").set(shards_.size());
  // Deliberately no publish_buffer_stats() here: the pool gauges are
  // process-cumulative, which would break byte-identical reruns.  Benches
  // publish them into their own registry when gating allocations.
  return merged.to_json(indent);
}

}  // namespace gdp::router
