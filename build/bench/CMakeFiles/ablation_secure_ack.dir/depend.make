# Empty dependencies file for ablation_secure_ack.
# This may be replaced when dependencies are built.
