file(REMOVE_RECURSE
  "CMakeFiles/ablation_secure_ack.dir/ablation_secure_ack.cpp.o"
  "CMakeFiles/ablation_secure_ack.dir/ablation_secure_ack.cpp.o.d"
  "ablation_secure_ack"
  "ablation_secure_ack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_secure_ack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
