
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig8_case_study.cpp" "bench/CMakeFiles/fig8_case_study.dir/fig8_case_study.cpp.o" "gcc" "bench/CMakeFiles/fig8_case_study.dir/fig8_case_study.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/gdp_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/caapi/CMakeFiles/gdp_caapi.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/gdp_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/gdp_server.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/gdp_store.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/gdp_client.dir/DependInfo.cmake"
  "/root/repo/build/src/router/CMakeFiles/gdp_router.dir/DependInfo.cmake"
  "/root/repo/build/src/trust/CMakeFiles/gdp_trust.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gdp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/gdp_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/capsule/CMakeFiles/gdp_capsule.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/gdp_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gdp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
