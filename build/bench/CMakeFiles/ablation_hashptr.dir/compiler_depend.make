# Empty compiler generated dependencies file for ablation_hashptr.
# This may be replaced when dependencies are built.
