file(REMOVE_RECURSE
  "CMakeFiles/ablation_hashptr.dir/ablation_hashptr.cpp.o"
  "CMakeFiles/ablation_hashptr.dir/ablation_hashptr.cpp.o.d"
  "ablation_hashptr"
  "ablation_hashptr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hashptr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
