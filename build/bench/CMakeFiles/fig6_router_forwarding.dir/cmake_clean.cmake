file(REMOVE_RECURSE
  "CMakeFiles/fig6_router_forwarding.dir/fig6_router_forwarding.cpp.o"
  "CMakeFiles/fig6_router_forwarding.dir/fig6_router_forwarding.cpp.o.d"
  "fig6_router_forwarding"
  "fig6_router_forwarding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_router_forwarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
