# Empty compiler generated dependencies file for fig6_router_forwarding.
# This may be replaced when dependencies are built.
