file(REMOVE_RECURSE
  "CMakeFiles/ablation_antientropy.dir/ablation_antientropy.cpp.o"
  "CMakeFiles/ablation_antientropy.dir/ablation_antientropy.cpp.o.d"
  "ablation_antientropy"
  "ablation_antientropy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_antientropy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
