# Empty dependencies file for ablation_antientropy.
# This may be replaced when dependencies are built.
