# Empty compiler generated dependencies file for ablation_crypto.
# This may be replaced when dependencies are built.
