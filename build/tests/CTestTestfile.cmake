# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/capsule_test[1]_include.cmake")
include("/root/repo/build/tests/capsule_property_test[1]_include.cmake")
include("/root/repo/build/tests/trust_test[1]_include.cmake")
include("/root/repo/build/tests/store_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/wire_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/caapi_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/router_test[1]_include.cmake")
include("/root/repo/build/tests/security_test[1]_include.cmake")
include("/root/repo/build/tests/system_property_test[1]_include.cmake")
include("/root/repo/build/tests/server_test[1]_include.cmake")
include("/root/repo/build/tests/lifecycle_test[1]_include.cmake")
include("/root/repo/build/tests/capi_test[1]_include.cmake")
