# Empty dependencies file for capsule_test.
# This may be replaced when dependencies are built.
