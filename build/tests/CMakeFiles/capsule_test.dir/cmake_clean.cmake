file(REMOVE_RECURSE
  "CMakeFiles/capsule_test.dir/capsule_test.cpp.o"
  "CMakeFiles/capsule_test.dir/capsule_test.cpp.o.d"
  "capsule_test"
  "capsule_test.pdb"
  "capsule_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capsule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
