file(REMOVE_RECURSE
  "CMakeFiles/capsule_property_test.dir/capsule_property_test.cpp.o"
  "CMakeFiles/capsule_property_test.dir/capsule_property_test.cpp.o.d"
  "capsule_property_test"
  "capsule_property_test.pdb"
  "capsule_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capsule_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
