# Empty compiler generated dependencies file for capsule_property_test.
# This may be replaced when dependencies are built.
