file(REMOVE_RECURSE
  "CMakeFiles/caapi_test.dir/caapi_test.cpp.o"
  "CMakeFiles/caapi_test.dir/caapi_test.cpp.o.d"
  "caapi_test"
  "caapi_test.pdb"
  "caapi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caapi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
