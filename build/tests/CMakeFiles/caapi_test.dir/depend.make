# Empty dependencies file for caapi_test.
# This may be replaced when dependencies are built.
