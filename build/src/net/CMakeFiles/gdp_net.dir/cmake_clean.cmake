file(REMOVE_RECURSE
  "CMakeFiles/gdp_net.dir/network.cpp.o"
  "CMakeFiles/gdp_net.dir/network.cpp.o.d"
  "CMakeFiles/gdp_net.dir/sim.cpp.o"
  "CMakeFiles/gdp_net.dir/sim.cpp.o.d"
  "libgdp_net.a"
  "libgdp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
