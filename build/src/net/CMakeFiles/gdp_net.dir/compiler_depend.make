# Empty compiler generated dependencies file for gdp_net.
# This may be replaced when dependencies are built.
