file(REMOVE_RECURSE
  "libgdp_net.a"
)
