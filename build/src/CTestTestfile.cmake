# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("crypto")
subdirs("wire")
subdirs("capsule")
subdirs("trust")
subdirs("store")
subdirs("net")
subdirs("router")
subdirs("server")
subdirs("client")
subdirs("caapi")
subdirs("baselines")
subdirs("harness")
subdirs("capi")
