file(REMOVE_RECURSE
  "libgdp_wire.a"
)
