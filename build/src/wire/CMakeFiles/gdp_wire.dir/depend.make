# Empty dependencies file for gdp_wire.
# This may be replaced when dependencies are built.
