file(REMOVE_RECURSE
  "CMakeFiles/gdp_wire.dir/messages.cpp.o"
  "CMakeFiles/gdp_wire.dir/messages.cpp.o.d"
  "CMakeFiles/gdp_wire.dir/pdu.cpp.o"
  "CMakeFiles/gdp_wire.dir/pdu.cpp.o.d"
  "libgdp_wire.a"
  "libgdp_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdp_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
