# Empty compiler generated dependencies file for gdp_baselines.
# This may be replaced when dependencies are built.
