
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/blob.cpp" "src/baselines/CMakeFiles/gdp_baselines.dir/blob.cpp.o" "gcc" "src/baselines/CMakeFiles/gdp_baselines.dir/blob.cpp.o.d"
  "/root/repo/src/baselines/remotefs.cpp" "src/baselines/CMakeFiles/gdp_baselines.dir/remotefs.cpp.o" "gcc" "src/baselines/CMakeFiles/gdp_baselines.dir/remotefs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/gdp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/gdp_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/capsule/CMakeFiles/gdp_capsule.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/gdp_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gdp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
