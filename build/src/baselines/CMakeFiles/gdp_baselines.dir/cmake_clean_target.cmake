file(REMOVE_RECURSE
  "libgdp_baselines.a"
)
