file(REMOVE_RECURSE
  "CMakeFiles/gdp_baselines.dir/blob.cpp.o"
  "CMakeFiles/gdp_baselines.dir/blob.cpp.o.d"
  "CMakeFiles/gdp_baselines.dir/remotefs.cpp.o"
  "CMakeFiles/gdp_baselines.dir/remotefs.cpp.o.d"
  "libgdp_baselines.a"
  "libgdp_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdp_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
