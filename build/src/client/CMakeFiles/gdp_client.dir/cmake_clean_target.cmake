file(REMOVE_RECURSE
  "libgdp_client.a"
)
