file(REMOVE_RECURSE
  "CMakeFiles/gdp_client.dir/client.cpp.o"
  "CMakeFiles/gdp_client.dir/client.cpp.o.d"
  "libgdp_client.a"
  "libgdp_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdp_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
