# Empty dependencies file for gdp_client.
# This may be replaced when dependencies are built.
