file(REMOVE_RECURSE
  "CMakeFiles/gdp_trust.dir/advertisement.cpp.o"
  "CMakeFiles/gdp_trust.dir/advertisement.cpp.o.d"
  "CMakeFiles/gdp_trust.dir/cert.cpp.o"
  "CMakeFiles/gdp_trust.dir/cert.cpp.o.d"
  "CMakeFiles/gdp_trust.dir/delegation.cpp.o"
  "CMakeFiles/gdp_trust.dir/delegation.cpp.o.d"
  "CMakeFiles/gdp_trust.dir/principal.cpp.o"
  "CMakeFiles/gdp_trust.dir/principal.cpp.o.d"
  "libgdp_trust.a"
  "libgdp_trust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdp_trust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
