# Empty compiler generated dependencies file for gdp_trust.
# This may be replaced when dependencies are built.
