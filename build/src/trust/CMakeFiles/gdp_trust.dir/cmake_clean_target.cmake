file(REMOVE_RECURSE
  "libgdp_trust.a"
)
