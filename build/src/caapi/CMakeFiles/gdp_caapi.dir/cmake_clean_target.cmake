file(REMOVE_RECURSE
  "libgdp_caapi.a"
)
