file(REMOVE_RECURSE
  "CMakeFiles/gdp_caapi.dir/aggregate.cpp.o"
  "CMakeFiles/gdp_caapi.dir/aggregate.cpp.o.d"
  "CMakeFiles/gdp_caapi.dir/commit.cpp.o"
  "CMakeFiles/gdp_caapi.dir/commit.cpp.o.d"
  "CMakeFiles/gdp_caapi.dir/fs.cpp.o"
  "CMakeFiles/gdp_caapi.dir/fs.cpp.o.d"
  "CMakeFiles/gdp_caapi.dir/kv.cpp.o"
  "CMakeFiles/gdp_caapi.dir/kv.cpp.o.d"
  "CMakeFiles/gdp_caapi.dir/stream.cpp.o"
  "CMakeFiles/gdp_caapi.dir/stream.cpp.o.d"
  "CMakeFiles/gdp_caapi.dir/timeseries.cpp.o"
  "CMakeFiles/gdp_caapi.dir/timeseries.cpp.o.d"
  "libgdp_caapi.a"
  "libgdp_caapi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdp_caapi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
