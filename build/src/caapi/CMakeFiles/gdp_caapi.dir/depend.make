# Empty dependencies file for gdp_caapi.
# This may be replaced when dependencies are built.
