file(REMOVE_RECURSE
  "CMakeFiles/gdp_router.dir/endpoint.cpp.o"
  "CMakeFiles/gdp_router.dir/endpoint.cpp.o.d"
  "CMakeFiles/gdp_router.dir/glookup.cpp.o"
  "CMakeFiles/gdp_router.dir/glookup.cpp.o.d"
  "CMakeFiles/gdp_router.dir/router.cpp.o"
  "CMakeFiles/gdp_router.dir/router.cpp.o.d"
  "CMakeFiles/gdp_router.dir/topology.cpp.o"
  "CMakeFiles/gdp_router.dir/topology.cpp.o.d"
  "libgdp_router.a"
  "libgdp_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdp_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
