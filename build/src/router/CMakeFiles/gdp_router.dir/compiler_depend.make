# Empty compiler generated dependencies file for gdp_router.
# This may be replaced when dependencies are built.
