file(REMOVE_RECURSE
  "libgdp_router.a"
)
