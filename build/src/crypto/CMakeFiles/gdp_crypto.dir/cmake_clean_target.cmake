file(REMOVE_RECURSE
  "libgdp_crypto.a"
)
