# Empty compiler generated dependencies file for gdp_crypto.
# This may be replaced when dependencies are built.
