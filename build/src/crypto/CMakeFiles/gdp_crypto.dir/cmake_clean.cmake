file(REMOVE_RECURSE
  "CMakeFiles/gdp_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/gdp_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/gdp_crypto.dir/hmac.cpp.o"
  "CMakeFiles/gdp_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/gdp_crypto.dir/keys.cpp.o"
  "CMakeFiles/gdp_crypto.dir/keys.cpp.o.d"
  "CMakeFiles/gdp_crypto.dir/secp256k1.cpp.o"
  "CMakeFiles/gdp_crypto.dir/secp256k1.cpp.o.d"
  "CMakeFiles/gdp_crypto.dir/sha256.cpp.o"
  "CMakeFiles/gdp_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/gdp_crypto.dir/u256.cpp.o"
  "CMakeFiles/gdp_crypto.dir/u256.cpp.o.d"
  "libgdp_crypto.a"
  "libgdp_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdp_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
