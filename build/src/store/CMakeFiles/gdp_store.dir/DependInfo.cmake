
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/store/capsule_store.cpp" "src/store/CMakeFiles/gdp_store.dir/capsule_store.cpp.o" "gcc" "src/store/CMakeFiles/gdp_store.dir/capsule_store.cpp.o.d"
  "/root/repo/src/store/crc32.cpp" "src/store/CMakeFiles/gdp_store.dir/crc32.cpp.o" "gcc" "src/store/CMakeFiles/gdp_store.dir/crc32.cpp.o.d"
  "/root/repo/src/store/logstore.cpp" "src/store/CMakeFiles/gdp_store.dir/logstore.cpp.o" "gcc" "src/store/CMakeFiles/gdp_store.dir/logstore.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gdp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/capsule/CMakeFiles/gdp_capsule.dir/DependInfo.cmake"
  "/root/repo/build/src/trust/CMakeFiles/gdp_trust.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/gdp_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
