# Empty compiler generated dependencies file for gdp_store.
# This may be replaced when dependencies are built.
