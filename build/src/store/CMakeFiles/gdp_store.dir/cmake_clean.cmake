file(REMOVE_RECURSE
  "CMakeFiles/gdp_store.dir/capsule_store.cpp.o"
  "CMakeFiles/gdp_store.dir/capsule_store.cpp.o.d"
  "CMakeFiles/gdp_store.dir/crc32.cpp.o"
  "CMakeFiles/gdp_store.dir/crc32.cpp.o.d"
  "CMakeFiles/gdp_store.dir/logstore.cpp.o"
  "CMakeFiles/gdp_store.dir/logstore.cpp.o.d"
  "libgdp_store.a"
  "libgdp_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdp_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
