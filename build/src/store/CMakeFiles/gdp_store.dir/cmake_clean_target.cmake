file(REMOVE_RECURSE
  "libgdp_store.a"
)
