file(REMOVE_RECURSE
  "CMakeFiles/gdp_server.dir/server.cpp.o"
  "CMakeFiles/gdp_server.dir/server.cpp.o.d"
  "libgdp_server.a"
  "libgdp_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdp_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
