# Empty compiler generated dependencies file for gdp_server.
# This may be replaced when dependencies are built.
