file(REMOVE_RECURSE
  "libgdp_server.a"
)
