file(REMOVE_RECURSE
  "CMakeFiles/gdp_capsule.dir/entangle.cpp.o"
  "CMakeFiles/gdp_capsule.dir/entangle.cpp.o.d"
  "CMakeFiles/gdp_capsule.dir/heartbeat.cpp.o"
  "CMakeFiles/gdp_capsule.dir/heartbeat.cpp.o.d"
  "CMakeFiles/gdp_capsule.dir/metadata.cpp.o"
  "CMakeFiles/gdp_capsule.dir/metadata.cpp.o.d"
  "CMakeFiles/gdp_capsule.dir/proof.cpp.o"
  "CMakeFiles/gdp_capsule.dir/proof.cpp.o.d"
  "CMakeFiles/gdp_capsule.dir/record.cpp.o"
  "CMakeFiles/gdp_capsule.dir/record.cpp.o.d"
  "CMakeFiles/gdp_capsule.dir/sealed.cpp.o"
  "CMakeFiles/gdp_capsule.dir/sealed.cpp.o.d"
  "CMakeFiles/gdp_capsule.dir/state.cpp.o"
  "CMakeFiles/gdp_capsule.dir/state.cpp.o.d"
  "CMakeFiles/gdp_capsule.dir/strategy.cpp.o"
  "CMakeFiles/gdp_capsule.dir/strategy.cpp.o.d"
  "CMakeFiles/gdp_capsule.dir/writer.cpp.o"
  "CMakeFiles/gdp_capsule.dir/writer.cpp.o.d"
  "libgdp_capsule.a"
  "libgdp_capsule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdp_capsule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
