# Empty dependencies file for gdp_capsule.
# This may be replaced when dependencies are built.
