
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/capsule/entangle.cpp" "src/capsule/CMakeFiles/gdp_capsule.dir/entangle.cpp.o" "gcc" "src/capsule/CMakeFiles/gdp_capsule.dir/entangle.cpp.o.d"
  "/root/repo/src/capsule/heartbeat.cpp" "src/capsule/CMakeFiles/gdp_capsule.dir/heartbeat.cpp.o" "gcc" "src/capsule/CMakeFiles/gdp_capsule.dir/heartbeat.cpp.o.d"
  "/root/repo/src/capsule/metadata.cpp" "src/capsule/CMakeFiles/gdp_capsule.dir/metadata.cpp.o" "gcc" "src/capsule/CMakeFiles/gdp_capsule.dir/metadata.cpp.o.d"
  "/root/repo/src/capsule/proof.cpp" "src/capsule/CMakeFiles/gdp_capsule.dir/proof.cpp.o" "gcc" "src/capsule/CMakeFiles/gdp_capsule.dir/proof.cpp.o.d"
  "/root/repo/src/capsule/record.cpp" "src/capsule/CMakeFiles/gdp_capsule.dir/record.cpp.o" "gcc" "src/capsule/CMakeFiles/gdp_capsule.dir/record.cpp.o.d"
  "/root/repo/src/capsule/sealed.cpp" "src/capsule/CMakeFiles/gdp_capsule.dir/sealed.cpp.o" "gcc" "src/capsule/CMakeFiles/gdp_capsule.dir/sealed.cpp.o.d"
  "/root/repo/src/capsule/state.cpp" "src/capsule/CMakeFiles/gdp_capsule.dir/state.cpp.o" "gcc" "src/capsule/CMakeFiles/gdp_capsule.dir/state.cpp.o.d"
  "/root/repo/src/capsule/strategy.cpp" "src/capsule/CMakeFiles/gdp_capsule.dir/strategy.cpp.o" "gcc" "src/capsule/CMakeFiles/gdp_capsule.dir/strategy.cpp.o.d"
  "/root/repo/src/capsule/writer.cpp" "src/capsule/CMakeFiles/gdp_capsule.dir/writer.cpp.o" "gcc" "src/capsule/CMakeFiles/gdp_capsule.dir/writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gdp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/gdp_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
