file(REMOVE_RECURSE
  "libgdp_capsule.a"
)
