file(REMOVE_RECURSE
  "libgdp_common.a"
)
