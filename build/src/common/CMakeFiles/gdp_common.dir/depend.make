# Empty dependencies file for gdp_common.
# This may be replaced when dependencies are built.
