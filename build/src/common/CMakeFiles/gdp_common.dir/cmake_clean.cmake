file(REMOVE_RECURSE
  "CMakeFiles/gdp_common.dir/bytes.cpp.o"
  "CMakeFiles/gdp_common.dir/bytes.cpp.o.d"
  "CMakeFiles/gdp_common.dir/log.cpp.o"
  "CMakeFiles/gdp_common.dir/log.cpp.o.d"
  "CMakeFiles/gdp_common.dir/result.cpp.o"
  "CMakeFiles/gdp_common.dir/result.cpp.o.d"
  "CMakeFiles/gdp_common.dir/varint.cpp.o"
  "CMakeFiles/gdp_common.dir/varint.cpp.o.d"
  "libgdp_common.a"
  "libgdp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
