file(REMOVE_RECURSE
  "CMakeFiles/gdp_capi.dir/gdp.cpp.o"
  "CMakeFiles/gdp_capi.dir/gdp.cpp.o.d"
  "libgdp_capi.a"
  "libgdp_capi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdp_capi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
