# Empty compiler generated dependencies file for gdp_capi.
# This may be replaced when dependencies are built.
