file(REMOVE_RECURSE
  "libgdp_capi.a"
)
