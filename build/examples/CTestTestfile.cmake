# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sensor_swarm "/root/repo/build/examples/sensor_swarm")
set_tests_properties(example_sensor_swarm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_robot_models "/root/repo/build/examples/robot_models")
set_tests_properties(example_robot_models PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_untrusted_provider "/root/repo/build/examples/untrusted_provider")
set_tests_properties(example_untrusted_provider PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_team_chat "/root/repo/build/examples/team_chat")
set_tests_properties(example_team_chat PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
