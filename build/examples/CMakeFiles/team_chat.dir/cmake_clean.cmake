file(REMOVE_RECURSE
  "CMakeFiles/team_chat.dir/team_chat.cpp.o"
  "CMakeFiles/team_chat.dir/team_chat.cpp.o.d"
  "team_chat"
  "team_chat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/team_chat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
