# Empty dependencies file for team_chat.
# This may be replaced when dependencies are built.
