# Empty dependencies file for untrusted_provider.
# This may be replaced when dependencies are built.
