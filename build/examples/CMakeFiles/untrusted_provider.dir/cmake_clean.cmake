file(REMOVE_RECURSE
  "CMakeFiles/untrusted_provider.dir/untrusted_provider.cpp.o"
  "CMakeFiles/untrusted_provider.dir/untrusted_provider.cpp.o.d"
  "untrusted_provider"
  "untrusted_provider.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/untrusted_provider.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
