file(REMOVE_RECURSE
  "CMakeFiles/robot_models.dir/robot_models.cpp.o"
  "CMakeFiles/robot_models.dir/robot_models.cpp.o.d"
  "robot_models"
  "robot_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robot_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
