# Empty dependencies file for robot_models.
# This may be replaced when dependencies are built.
